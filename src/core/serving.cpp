#include "core/serving.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "crypto/bytes.h"
#include "crypto/drbg.h"
#include "faults/fault_plane.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/span.h"
#include "obs/timeline.h"
#include "runtime/errors.h"

namespace stf::core {
namespace {

struct ServingObs {
  obs::Counter& dispatches = obs::Registry::global().counter(
      obs::names::kServingDispatches, "work quanta dispatched to fleet nodes");
  obs::Counter& dispatch_failures = obs::Registry::global().counter(
      obs::names::kServingDispatchFailures, "probes that found a node dead");
  obs::Counter& ejections = obs::Registry::global().counter(
      obs::names::kServingEjections, "circuit-breaker ejections");
  obs::QuantileSeries& request_quantile_ns = obs::Registry::global().quantiles(
      obs::names::kServingRequestQuantileNs,
      "exact p50/p95/p99 of per-request lane latency on serving nodes");
};

ServingObs& serving_obs() {
  static ServingObs* o = new ServingObs();
  return *o;
}

// Request-plane traffic series, kept separate from ServingObs so code paths
// that never run serve_trace (all pre-existing benches) do not register
// them — registry exports list every registered series and the committed
// BENCH baselines must stay byte-identical with batching off.
struct TrafficObs {
  obs::Counter& offered = obs::Registry::global().counter(
      obs::names::kServingRequestsOffered, "requests offered to serve_trace");
  obs::Counter& completed = obs::Registry::global().counter(
      obs::names::kServingRequestsCompleted, "requests served to completion");
  obs::Counter& shed_queue_full = obs::Registry::global().counter(
      obs::names::kServingShedQueueFull,
      "requests shed at admission (queue at capacity)");
  obs::Counter& shed_expired = obs::Registry::global().counter(
      obs::names::kServingShedExpired,
      "requests shed at dispatch (deadline already passed)");
  obs::Counter& slo_misses = obs::Registry::global().counter(
      obs::names::kServingSloMisses, "completed requests past their deadline");
  obs::QuantileSeries& queue_wait_ns = obs::Registry::global().quantiles(
      obs::names::kServingQueueWaitQuantileNs,
      "exact p50/p95/p99 of arrival-to-dispatch queueing delay");
  obs::QuantileSeries& e2e_ns = obs::Registry::global().quantiles(
      obs::names::kServingE2eQuantileNs,
      "exact p50/p95/p99 of arrival-to-completion request latency");
};

TrafficObs& traffic_obs() {
  static TrafficObs* o = new TrafficObs();
  return *o;
}

// Failover series, registered only when the fault-tolerant serve_trace path
// actually runs (fault plane attached, retry or hedging on) — faults-off
// runs must keep their registry exports byte-identical to PR-6 baselines.
struct FailoverObs {
  obs::Counter& detections = obs::Registry::global().counter(
      obs::names::kServingFailoverDetections,
      "mid-trace crash detections (dispatch timeouts)");
  obs::Counter& resteered = obs::Registry::global().counter(
      obs::names::kServingFailoverResteered,
      "queued requests re-steered off a crashed node");
  obs::Counter& retries = obs::Registry::global().counter(
      obs::names::kServingFailoverRetries,
      "client-side retry attempts consumed");
  obs::Counter& failed_requests = obs::Registry::global().counter(
      obs::names::kServingFailoverFailedRequests,
      "requests terminally lost to crashed nodes");
  obs::Counter& hedges = obs::Registry::global().counter(
      obs::names::kServingFailoverHedges, "hedge duplicates enqueued");
  obs::Counter& hedge_wins = obs::Registry::global().counter(
      obs::names::kServingFailoverHedgeWins,
      "requests whose hedge copy completed first");
  obs::Counter& readmissions = obs::Registry::global().counter(
      obs::names::kServingFailoverReadmissions,
      "half-open probes that re-admitted a node");
};

FailoverObs& failover_obs() {
  static FailoverObs* o = new FailoverObs();
  return *o;
}

// Causal-trace sites (docs/TRACING.md), interned once. Queue-level events
// (request phase spans, flow arrows) are recorded on a dedicated per-node
// "queue row" lane (tid 0xffff) so Perfetto keeps the compute lanes clean.
constexpr std::uint16_t kQueueLaneTid = 0xffff;

struct TraceSites {
  obs::SpanTracer& tracer = obs::SpanTracer::global();
  std::uint32_t request = tracer.intern(obs::names::kSpanServingRequest);
  std::uint32_t wire = tracer.intern(obs::names::kSpanServingWire);
  std::uint32_t queue_wait = tracer.intern(obs::names::kSpanServingQueueWait);
  std::uint32_t batch_wait = tracer.intern(obs::names::kSpanServingBatchWait);
  std::uint32_t service = tracer.intern(obs::names::kSpanServingService);
  std::uint32_t flow = tracer.intern(obs::names::kFlowServingRequest);
};

TraceSites& trace_sites() {
  static TraceSites* t = new TraceSites();
  return *t;
}

/// Pre-computed decomposition of one completed request. The four child
/// intervals tile [client_arrival, completion] with no overlap; any
/// uncovered gap (a retry's backoff wait) is deliberate, reported by
/// trace_report as explicit slack.
struct MemberTrace {
  std::uint64_t trace_id = 0;
  std::uint64_t client_arrival_ns = 0;
  std::uint64_t wire_end_ns = 0;     ///< client_arrival + wire cost
  std::uint64_t node_arrival_ns = 0; ///< when this copy hit the node queue
  std::uint64_t queue_end_ns = 0;    ///< lane/circuit free, clamped to dispatch
  std::uint64_t service_span_id = 0; ///< pre-allocated: batch spans nest here
};

/// Records the causal tree of one completed member: a root span over the
/// whole request plus wire -> queue_wait -> batch_wait -> service children.
/// Zero-length phases are skipped (they add nothing to coverage).
void record_member_trace(const MemberTrace& m, std::uint16_t node,
                         std::uint64_t dispatch_ns,
                         std::uint64_t completion_ns) {
  TraceSites& ts = trace_sites();
  obs::ScopedLane lane(node, kQueueLaneTid);
  const std::uint64_t root = ts.tracer.alloc_span_id();
  ts.tracer.record_traced(ts.request, m.client_arrival_ns, completion_ns,
                          m.trace_id, root, 0);
  if (m.wire_end_ns > m.client_arrival_ns) {
    ts.tracer.record_traced(ts.wire, m.client_arrival_ns, m.wire_end_ns,
                            m.trace_id, ts.tracer.alloc_span_id(), root);
  }
  if (m.queue_end_ns > m.node_arrival_ns) {
    ts.tracer.record_traced(ts.queue_wait, m.node_arrival_ns, m.queue_end_ns,
                            m.trace_id, ts.tracer.alloc_span_id(), root);
  }
  if (dispatch_ns > m.queue_end_ns) {
    ts.tracer.record_traced(ts.batch_wait, m.queue_end_ns, dispatch_ns,
                            m.trace_id, ts.tracer.alloc_span_id(), root);
  }
  ts.tracer.record_traced(ts.service, dispatch_ns, completion_ns, m.trace_id,
                          m.service_span_id, root);
}

/// Nearest-rank quantile (same rule as obs::QuantileSeries): the
/// ceil(q*n)-th smallest, rank clamped to [1, n]; 0 on an empty set.
std::uint64_t nearest_rank(std::vector<std::uint64_t>& values, double q) {
  if (values.empty()) return 0;
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  rank = std::min(std::max<std::size_t>(rank, 1), values.size());
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(rank - 1),
                   values.end());
  return values[rank - 1];
}

}  // namespace

TrafficSummary summarize(const std::vector<RequestOutcome>& outcomes) {
  TrafficSummary s;
  std::vector<std::uint64_t> e2e;
  bool first = true;
  for (const RequestOutcome& o : outcomes) {
    ++s.offered;
    if (first || o.arrival_ns < s.first_arrival_ns) {
      s.first_arrival_ns = o.arrival_ns;
      first = false;
    }
    switch (o.status) {
      case RequestStatus::Completed:
        ++s.completed;
        if (o.slo_miss) ++s.slo_misses;
        s.last_completion_ns = std::max(s.last_completion_ns, o.completion_ns);
        e2e.push_back(o.completion_ns - o.arrival_ns);
        break;
      case RequestStatus::Retried:
        ++s.retried;
        s.retries_total += o.retries;
        if (o.slo_miss) ++s.slo_misses;
        s.last_completion_ns = std::max(s.last_completion_ns, o.completion_ns);
        e2e.push_back(o.completion_ns - o.arrival_ns);
        break;
      case RequestStatus::ShedQueueFull: ++s.shed_queue_full; break;
      case RequestStatus::ShedExpired: ++s.shed_expired; break;
      case RequestStatus::FailedNodeDown: ++s.failed_node_down; break;
    }
  }
  s.p50_ns = nearest_rank(e2e, 0.50);
  s.p95_ns = nearest_rank(e2e, 0.95);
  s.p99_ns = nearest_rank(e2e, 0.99);
  return s;
}

std::string export_traffic_summary_json(const TrafficSummary& s) {
  // Throughput is the one derived float; exported as integer milli-rps so
  // two identical seeded runs stay byte-identical.
  const auto throughput_mrps =
      static_cast<std::int64_t>(std::llround(s.throughput_rps() * 1000.0));
  std::string out = "{\n";
  out += "  \"offered\": " + std::to_string(s.offered) + ",\n";
  out += "  \"completed\": " + std::to_string(s.completed) + ",\n";
  out += "  \"shed_queue_full\": " + std::to_string(s.shed_queue_full) + ",\n";
  out += "  \"shed_expired\": " + std::to_string(s.shed_expired) + ",\n";
  out += "  \"slo_misses\": " + std::to_string(s.slo_misses) + ",\n";
  out += "  \"failed_node_down\": " + std::to_string(s.failed_node_down) +
         ",\n";
  out += "  \"retried\": " + std::to_string(s.retried) + ",\n";
  out += "  \"retries_total\": " + std::to_string(s.retries_total) + ",\n";
  out += "  \"goodput\": " + std::to_string(s.goodput()) + ",\n";
  out += "  \"first_arrival_ns\": " + std::to_string(s.first_arrival_ns) +
         ",\n";
  out += "  \"last_completion_ns\": " + std::to_string(s.last_completion_ns) +
         ",\n";
  out += "  \"p50_ns\": " + std::to_string(s.p50_ns) + ",\n";
  out += "  \"p95_ns\": " + std::to_string(s.p95_ns) + ",\n";
  out += "  \"p99_ns\": " + std::to_string(s.p99_ns) + ",\n";
  out += "  \"throughput_mrps\": " + std::to_string(throughput_mrps) + ",\n";
  out += "  \"slo_alerts\": " + std::to_string(s.slo_alerts) + ",\n";
  out += "  \"slo_breached_windows\": " +
         std::to_string(s.slo_breached_windows) + "\n";
  out += "}\n";
  return out;
}

ServingNode::ServingNode(const ml::lite::FlatModel& model,
                         ServingConfig config, unsigned ordinal)
    : config_(std::move(config)), ordinal_(ordinal) {
  tee::CostModel cost = config_.model;
  if (config_.threads > config_.physical_cores) {
    cost.flops_per_second *= config_.hyperthread_efficiency;
  }
  if (config_.mode == tee::TeeMode::Hardware && config_.threads > 1) {
    const double contention =
        config_.threads * (config_.threads > config_.physical_cores
                               ? config_.oversubscribed_fault_factor
                               : 1.0);
    cost.page_fault_ns =
        static_cast<std::uint64_t>(cost.page_fault_ns * contention);
    cost.page_load_ns =
        static_cast<std::uint64_t>(cost.page_load_ns * contention);
    cost.page_evict_ns =
        static_cast<std::uint64_t>(cost.page_evict_ns * contention);
  }
  if (config_.kernel_threads == 1) {
    config_.inference.kernels = ml::kernels::KernelContext{};  // serial
  } else if (config_.kernel_threads > 1) {
    kernel_pool_ =
        std::make_unique<runtime::ThreadPool>(config_.kernel_threads);
    config_.inference.kernels = ml::kernels::KernelContext{
        kernel_pool_.get(), kernel_pool_->thread_count()};
  }  // 0: keep the shared-pool default from InferenceOptions
  platform_ = std::make_unique<tee::Platform>("serving-node", config_.mode,
                                              cost, config_.threads);
  service_ = std::make_unique<InferenceService>(*platform_, model,
                                                config_.inference);
  lanes_.resize(config_.threads);
  if (auto* enclave = const_cast<tee::Enclave*>(service_->enclave())) {
    for (unsigned t = 0; t < config_.threads; ++t) {
      scratch_.push_back(enclave->alloc_region(
          "thread-scratch-" + std::to_string(t), config_.per_thread_scratch));
    }
  }
}

void ServingNode::classify_on_lane(unsigned lane, const ml::Tensor& image) {
  // Spans/profiles recorded inside this request carry (node ordinal, lane)
  // so the Chrome trace draws one row per simulated core lane.
  obs::ScopedLane lane_scope(static_cast<std::uint16_t>(ordinal_),
                             static_cast<std::uint16_t>(lane));
  platform_->set_active_lane(&lanes_[lane]);
  const std::uint64_t start_ns = lanes_[lane].now_ns();
  if (auto* enclave = const_cast<tee::Enclave*>(service_->enclave())) {
    enclave->access(scratch_[lane], 0, config_.per_thread_scratch, true);
  }
  (void)service_->classify(image);
  serving_obs().request_quantile_ns.observe(lanes_[lane].now_ns() - start_ns);
  platform_->set_active_lane(nullptr);
}

unsigned ServingNode::least_loaded_lane() const {
  unsigned best = 0;
  for (unsigned i = 1; i < lanes_.size(); ++i) {
    if (lanes_[i].now_ns() < lanes_[best].now_ns()) best = i;
  }
  return best;
}

std::uint64_t ServingNode::next_free_ns() const {
  return lanes_[least_loaded_lane()].now_ns();
}

std::uint64_t ServingNode::serve_batch(
    const std::vector<const ml::Tensor*>& inputs, std::uint64_t dispatch_ns,
    const BatchTraceInfo* trace) {
  const unsigned lane = least_loaded_lane();
  obs::ScopedLane lane_scope(static_cast<std::uint16_t>(ordinal_),
                             static_cast<std::uint16_t>(lane));
  platform_->set_active_lane(&lanes_[lane]);
  lanes_[lane].advance_to(dispatch_ns);  // lane idles until the batch launch
  // Traced dispatch: every member's flow arrow lands on the compute lane
  // here (batch fan-in), and interior spans recorded during the batch nest
  // under the head member's service span.
  const bool traced = trace != nullptr && trace->trace_id != 0;
  if (traced) {
    TraceSites& ts = trace_sites();
    for (const std::uint64_t id : trace->member_trace_ids) {
      ts.tracer.record_flow(ts.flow, id, dispatch_ns, obs::FlowPhase::Finish);
    }
  }
  std::optional<obs::ScopedTraceContext> ctx;
  if (traced) ctx.emplace(trace->trace_id, trace->parent_span_id);
  if (auto* enclave = const_cast<tee::Enclave*>(service_->enclave())) {
    enclave->access(scratch_[lane], 0, config_.per_thread_scratch, true);
  }
  (void)service_->classify_batch(inputs);
  const std::uint64_t completion = lanes_[lane].now_ns();
  platform_->set_active_lane(nullptr);
  return completion;
}

double ServingNode::classify_stream(const ml::Tensor& image,
                                    std::int64_t count) {
  const std::uint64_t start = lanes_.empty() ? 0 : lanes_[0].now_ns();
  for (std::int64_t i = 0; i < count; ++i) {
    // Least-loaded dispatch instead of round-robin: fixed-order assignment
    // drifts out of balance as per-request costs diverge (reclaim jitter,
    // mixed batch sizes), leaving some lanes idle while others queue.
    classify_on_lane(least_loaded_lane(), image);
  }
  std::uint64_t end = start;
  for (const auto& lane : lanes_) end = std::max(end, lane.now_ns());
  return static_cast<double>(end - start) / 1e9;
}

std::vector<RequestOutcome> ServingNode::serve_trace(
    const std::vector<Request>& requests, const BatchWindowConfig& window) {
  if (window.max_batch < 1) {
    throw std::invalid_argument("serve_trace: max_batch must be >= 1");
  }
  if (window.max_wait_s < 0) {
    throw std::invalid_argument("serve_trace: max_wait_s must be >= 0");
  }
  const auto wait_ns =
      static_cast<std::uint64_t>(std::llround(window.max_wait_s * 1e9));

  std::vector<RequestOutcome> outcomes;
  outcomes.reserve(requests.size());
  traffic_obs().offered.add(requests.size());

  const bool tracing = obs::tracing_enabled();
  obs::Timeline& tl = obs::Timeline::global();
  if (tl.enabled()) {
    // Offered load is bucketed at *client* arrival (before the wire), the
    // clock the SLO monitor reasons in.
    for (const Request& r : requests) {
      tl.record_offered(r.arrival_ns - r.wire_ns);
    }
  }

  std::deque<const Request*> pending;
  std::size_t next = 0;

  // Admission control: requests arriving while the queue is at capacity are
  // shed immediately (the client gets an instant reject, not a slow miss).
  auto admit_until = [&](std::uint64_t t) {
    while (next < requests.size() && requests[next].arrival_ns <= t) {
      const Request& r = requests[next++];
      if (window.queue_capacity > 0 &&
          static_cast<std::int64_t>(pending.size()) >= window.queue_capacity) {
        RequestOutcome o;
        o.id = r.id;
        o.status = RequestStatus::ShedQueueFull;
        o.arrival_ns = r.arrival_ns;
        o.node = static_cast<std::int64_t>(ordinal_);
        outcomes.push_back(o);
        traffic_obs().shed_queue_full.add();
        tl.record_shed(r.arrival_ns - r.wire_ns);
      } else {
        pending.push_back(&r);
        if (tracing && r.trace_id != 0) {
          TraceSites& ts = trace_sites();
          obs::ScopedLane ql(static_cast<std::uint16_t>(ordinal_),
                             kQueueLaneTid);
          ts.tracer.record_flow(ts.flow, r.trace_id, r.arrival_ns - r.wire_ns,
                                obs::FlowPhase::Start);
        }
      }
    }
  };

  while (next < requests.size() || !pending.empty()) {
    if (pending.empty()) {
      admit_until(requests[next].arrival_ns);
      continue;
    }
    const std::uint64_t head_arrival = pending.front()->arrival_ns;
    const std::uint64_t lane_free = next_free_ns();
    std::uint64_t dispatch_at = std::max(lane_free, head_arrival);
    admit_until(dispatch_at);

    // Batch window: the queue head waits up to `wait_ns` for the batch to
    // fill; each admitted arrival pushes the launch to its arrival time,
    // and an unfilled window launches at close.
    if (static_cast<std::int64_t>(pending.size()) < window.max_batch) {
      const std::uint64_t close = std::max(dispatch_at, head_arrival + wait_ns);
      while (static_cast<std::int64_t>(pending.size()) < window.max_batch &&
             next < requests.size() && requests[next].arrival_ns <= close) {
        const std::uint64_t t = requests[next].arrival_ns;
        admit_until(t);
        dispatch_at = std::max(dispatch_at, t);
      }
      if (static_cast<std::int64_t>(pending.size()) < window.max_batch) {
        dispatch_at = close;
      }
      admit_until(dispatch_at);
    }

    // Pop the batch, shedding requests whose deadline already passed — a
    // guaranteed SLO miss is not worth a batch slot.
    std::vector<const Request*> batch;
    std::vector<const ml::Tensor*> batch_inputs;
    while (!pending.empty() &&
           static_cast<std::int64_t>(batch.size()) < window.max_batch) {
      const Request* r = pending.front();
      pending.pop_front();
      if (window.shed_expired && r->deadline_ns != 0 &&
          r->deadline_ns < dispatch_at) {
        RequestOutcome o;
        o.id = r->id;
        o.status = RequestStatus::ShedExpired;
        o.arrival_ns = r->arrival_ns;
        o.node = static_cast<std::int64_t>(ordinal_);
        outcomes.push_back(o);
        traffic_obs().shed_expired.add();
        tl.record_shed(dispatch_at);
        continue;
      }
      batch.push_back(r);
      batch_inputs.push_back(r->input);
    }
    if (batch.empty()) continue;  // the whole window expired

    // Causal linkage: pre-allocate each member's service span (the head's
    // becomes the batch's parent context inside serve_batch) and compute
    // the phase decomposition; recorded once the completion is known.
    BatchTraceInfo tinfo;
    std::vector<MemberTrace> members;
    if (tracing) {
      for (const Request* r : batch) {
        if (r->trace_id == 0) continue;
        MemberTrace m;
        m.trace_id = r->trace_id;
        m.client_arrival_ns = r->arrival_ns - r->wire_ns;
        m.wire_end_ns = r->arrival_ns;
        m.node_arrival_ns = r->arrival_ns;
        m.queue_end_ns =
            std::min(dispatch_at, std::max(r->arrival_ns, lane_free));
        m.service_span_id = obs::SpanTracer::global().alloc_span_id();
        members.push_back(m);
        tinfo.member_trace_ids.push_back(r->trace_id);
      }
      if (!members.empty()) {
        tinfo.trace_id = members.front().trace_id;
        tinfo.parent_span_id = members.front().service_span_id;
      }
    }

    // No lane advanced since dispatch_at was computed, so serve_batch picks
    // the same least-loaded lane that priced it.
    const std::uint64_t completion = serve_batch(
        batch_inputs, dispatch_at, members.empty() ? nullptr : &tinfo);

    for (const MemberTrace& m : members) {
      record_member_trace(m, static_cast<std::uint16_t>(ordinal_), dispatch_at,
                          completion);
    }
    tl.record_batch(dispatch_at, static_cast<std::int64_t>(batch.size()));
    tl.record_queue_depth(
        dispatch_at, static_cast<std::int64_t>(pending.size() + batch.size()));

    for (const Request* r : batch) {
      RequestOutcome o;
      o.id = r->id;
      o.status = RequestStatus::Completed;
      o.arrival_ns = r->arrival_ns;
      o.dispatch_ns = dispatch_at;
      o.completion_ns = completion;
      o.batch_size = static_cast<std::int64_t>(batch.size());
      o.slo_miss = r->deadline_ns != 0 && completion > r->deadline_ns;
      o.node = static_cast<std::int64_t>(ordinal_);
      outcomes.push_back(o);
      traffic_obs().completed.add();
      if (o.slo_miss) traffic_obs().slo_misses.add();
      traffic_obs().queue_wait_ns.observe(dispatch_at - r->arrival_ns);
      traffic_obs().e2e_ns.observe(completion - r->arrival_ns);
      serving_obs().request_quantile_ns.observe(completion - dispatch_at);
      tl.record_completed(completion, completion - (r->arrival_ns - r->wire_ns),
                          o.slo_miss);
    }
  }

  std::sort(outcomes.begin(), outcomes.end(),
            [](const RequestOutcome& a, const RequestOutcome& b) {
              return a.id < b.id;
            });
  return outcomes;
}

double ServingNode::estimate_stream_seconds(const ml::Tensor& image,
                                            std::int64_t count,
                                            int warmup_rounds,
                                            int measured_rounds) {
  for (int r = 0; r < warmup_rounds; ++r) {
    for (unsigned lane = 0; lane < config_.threads; ++lane) {
      classify_on_lane(lane, image);
    }
  }
  const std::uint64_t before = lanes_[0].now_ns();
  for (int r = 0; r < measured_rounds; ++r) {
    for (unsigned lane = 0; lane < config_.threads; ++lane) {
      classify_on_lane(lane, image);
    }
  }
  const double round_s =
      static_cast<double>(lanes_[0].now_ns() - before) / 1e9 / measured_rounds;
  const std::int64_t rounds =
      (count + config_.threads - 1) / config_.threads;
  return round_s * static_cast<double>(rounds);
}

ServingFleet::ServingFleet(const ml::lite::FlatModel& model,
                           ServingConfig config, unsigned nodes)
    : config_(std::move(config)) {
  for (unsigned n = 0; n < nodes; ++n) {
    nodes_.push_back(std::make_unique<ServingNode>(model, config_, n));
  }
  status_.resize(nodes_.size());
}

void ServingFleet::configure_resilience(FleetResilienceConfig cfg) {
  resilience_ = cfg;
}

void ServingFleet::attach_fault_plane(faults::FaultPlane& plane,
                                      std::uint32_t base_node_id) {
  fault_plane_ = &plane;
  fault_base_id_ = base_node_id;
  if (!resilience_.has_value()) resilience_ = FleetResilienceConfig{};
  // Wire the plane's GPU-corruption schedule into each node's offload
  // engine. The plane only owns windows + counters (no ml:: dependency);
  // the actual tensor damage is applied here, where both layers meet.
  if (config_.inference.gpu_offload) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const net::NodeId plane_id =
          base_node_id + static_cast<net::NodeId>(i);
      faults::FaultPlane* p = &plane;
      nodes_[i]->set_gpu_corruption(
          [p, plane_id](std::uint64_t now_ns, ml::Tensor& t) {
            if (p->gpu_corrupt(plane_id, now_ns) && t.size() > 0) {
              // A lying GPU: one wrong element in the returned product is
              // exactly what Freivalds / the conv spot checks must catch.
              t.at(t.size() / 2) += 1.0f;
            }
          });
    }
  }
}

void ServingFleet::sync_gpu_status() {
  if (!config_.inference.gpu_offload) return;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    status_[i].gpu_fallbacks = nodes_[i]->gpu_fallbacks();
    status_[i].gpu_distrusted = nodes_[i]->gpu_distrusted();
  }
}

void ServingFleet::configure_retry(RequestRetryPolicy policy) {
  retry_ = policy;
  if (!resilience_.has_value()) resilience_ = FleetResilienceConfig{};
}

void ServingFleet::configure_hedging(HedgePolicy policy) {
  hedge_ = policy;
  if (!resilience_.has_value()) resilience_ = FleetResilienceConfig{};
}

void ServingFleet::fail_node(unsigned index) {
  status_.at(index).alive = false;
  if (!resilience_.has_value()) resilience_ = FleetResilienceConfig{};
}

void ServingFleet::restore_node(unsigned index) {
  status_.at(index).alive = true;
}

unsigned ServingFleet::alive_node_count() const {
  unsigned n = 0;
  for (const auto& s : status_) n += s.alive ? 1 : 0;
  return n;
}

double ServingFleet::estimate_stream_seconds(const ml::Tensor& image,
                                             std::int64_t count) {
  if (resilience_.has_value()) return estimate_resilient(image, count);
  const std::int64_t per_node =
      (count + static_cast<std::int64_t>(nodes_.size()) - 1) /
      static_cast<std::int64_t>(nodes_.size());
  double slowest = 0;
  for (auto& node : nodes_) {
    slowest = std::max(slowest, node->estimate_stream_seconds(image, per_node));
  }
  // Request distribution: each image ships through the network shield and
  // the LAN to its node.
  const double per_request_s =
      static_cast<double>(config_.model.netshield_ns(image.byte_size()) +
                          config_.model.lan_transfer_ns(image.byte_size())) /
      1e9;
  return slowest + per_request_s * static_cast<double>(per_node);
}

std::vector<RequestOutcome> ServingFleet::serve_trace(
    const std::vector<Request>& requests, const BatchWindowConfig& window) {
  if (failover_active()) return serve_trace_failover(requests, window);
  if (alive_node_count() == 0) {
    throw runtime::TransientError("serving fleet: no live nodes");
  }
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < status_.size(); ++i) {
    if (status_[i].alive) live.push_back(i);
  }

  // Partition round-robin by request order; each request reaches its node's
  // queue only after paying the network shield + LAN shipping cost.
  std::vector<std::vector<Request>> shifted(live.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Request r = requests[i];
    const std::uint64_t bytes = r.input->byte_size();
    r.wire_ns = config_.model.netshield_ns(bytes) +
                config_.model.lan_transfer_ns(bytes);
    r.arrival_ns += r.wire_ns;  // nodes see post-wire arrivals; wire_ns lets
                                // them recover the client clock for traces
    shifted[i % live.size()].push_back(r);
  }

  std::vector<RequestOutcome> merged;
  merged.reserve(requests.size());
  for (std::size_t k = 0; k < live.size(); ++k) {
    std::vector<RequestOutcome> part =
        nodes_[live[k]]->serve_trace(shifted[k], window);
    status_[live[k]].served +=
        static_cast<std::int64_t>(summarize(part).completed);
    merged.insert(merged.end(), part.begin(), part.end());
  }

  // Report client-side arrivals so e2e latency includes the wire; deadlines
  // were absolute all along, so slo_miss already accounts for it.
  std::unordered_map<std::int64_t, std::uint64_t> client_arrival;
  client_arrival.reserve(requests.size());
  for (const Request& r : requests) client_arrival[r.id] = r.arrival_ns;
  for (RequestOutcome& o : merged) {
    const auto it = client_arrival.find(o.id);
    if (it != client_arrival.end()) o.arrival_ns = it->second;
  }
  std::sort(merged.begin(), merged.end(),
            [](const RequestOutcome& a, const RequestOutcome& b) {
              return a.id < b.id;
            });
  sync_gpu_status();
  return merged;
}

// Fault-tolerant request plane (docs/SERVING.md). One global event loop
// drives every node: each step picks the node whose next batch could launch
// earliest, runs its admission + batch window exactly like the single-node
// path (so with no faults the outcomes match the fast path bit-for-bit),
// and probes the fault plane's crash schedule at dispatch. A dispatch that
// finds the node dead costs the dispatcher `detect_timeout_seconds`, opens
// the circuit at the failure threshold (probation re-ejects in one), and
// re-steers the queued-but-unserved requests to the least-loaded live node;
// a crash window opening mid-service loses the in-flight batch the same
// way. Lost requests burn client retries (exponential backoff + seeded
// jitter) when configured, and become terminal FailedNodeDown otherwise —
// every offered request ends in exactly one terminal RequestOutcome.
std::vector<RequestOutcome> ServingFleet::serve_trace_failover(
    const std::vector<Request>& requests, const BatchWindowConfig& window) {
  if (window.max_batch < 1) {
    throw std::invalid_argument("serve_trace: max_batch must be >= 1");
  }
  if (window.max_wait_s < 0) {
    throw std::invalid_argument("serve_trace: max_wait_s must be >= 0");
  }
  if (alive_node_count() == 0) {
    throw runtime::TransientError("serving fleet: no live nodes");
  }
  const FleetResilienceConfig cfg =
      resilience_.value_or(FleetResilienceConfig{});
  const auto wait_ns =
      static_cast<std::uint64_t>(std::llround(window.max_wait_s * 1e9));
  const auto detect_ns =
      static_cast<std::uint64_t>(cfg.detect_timeout_seconds * 1e9);
  const auto cooldown_ns =
      static_cast<std::uint64_t>(cfg.cooldown_seconds * 1e9);
  const bool hedging = hedge_.has_value() && hedge_->enabled;
  const std::uint64_t hedge_ns =
      hedging ? static_cast<std::uint64_t>(
                    std::llround(hedge_->hedge_delay_s * 1e9))
              : 0;
  const std::size_t n = nodes_.size();

  // Each trace is its own timeline; ejection deadlines from a previous run
  // are stale (same contract as estimate_resilient).
  for (auto& s : status_) s.ejected_until_ns = 0;

  // Seeded jitter stream for retry backoff, independent of every other DRBG
  // in the run so the retry schedule replays bit-for-bit.
  crypto::Bytes jseed = crypto::to_bytes("stf-serving-retry-");
  std::uint8_t jb[8];
  crypto::store_be64(jb, retry_ ? retry_->jitter_seed : 0);
  crypto::append(jseed, crypto::BytesView(jb, 8));
  crypto::HmacDrbg jitter(jseed);

  struct Pending {
    const Request* req = nullptr;
    std::uint64_t arrival_ns = 0;    ///< node-side arrival (after the wire)
    std::uint64_t wire_ns = 0;       ///< wire cost of one shipment
    std::int64_t attempts = 0;       ///< client retries consumed so far
    std::int64_t steered_from = -1;  ///< node this copy last left
    int strikes = 0;   ///< crash encounters; a budget stops ping-pong
    bool is_hedge = false;
  };
  struct NodeLoop {
    std::vector<Pending> stream;  ///< static partition, sorted by arrival
    std::size_t next = 0;         ///< first un-admitted stream entry
    std::deque<Pending> inbox;    ///< re-steered/retried/hedged, sorted
    std::deque<Pending> queue;    ///< admitted, FIFO
    std::uint64_t not_before_ns = 0;  ///< dispatcher busy until (detections)
  };
  struct Terminal {
    RequestOutcome out;
    std::uint64_t node_arrival_ns = 0;
    bool by_hedge = false;
  };
  constexpr int kStrikeBudget = 8;

  std::vector<NodeLoop> loops(n);
  std::map<std::int64_t, Terminal> done;
  std::set<std::int64_t> hedged;

  // Static partition round-robin over nodes alive at trace start (identical
  // to the fast path when no mid-trace faults fire); every arrival pays the
  // network shield + LAN cost before reaching its node's queue.
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < n; ++i) {
    if (status_[i].alive) live.push_back(i);
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Pending p;
    p.req = &requests[i];
    const std::uint64_t bytes = requests[i].input->byte_size();
    p.wire_ns = config_.model.netshield_ns(bytes) +
                config_.model.lan_transfer_ns(bytes);
    p.arrival_ns = requests[i].arrival_ns + p.wire_ns;
    loops[live[i % live.size()]].stream.push_back(p);
  }

  traffic_obs().offered.add(requests.size());
  failover_obs();  // register the failover series for this run's exports

  const bool tracing = obs::tracing_enabled();
  obs::Timeline& tl = obs::Timeline::global();
  if (tl.enabled()) {
    for (const Request& r : requests) tl.record_offered(r.arrival_ns);
  }

  auto down_at = [&](std::size_t i, std::uint64_t t) {
    if (!status_[i].alive) return true;
    return fault_plane_ != nullptr &&
           fault_plane_->node_down(
               fault_base_id_ + static_cast<std::uint32_t>(i), t);
  };

  auto record_shed = [&](const Pending& p, RequestStatus st, std::size_t i) {
    if (p.is_hedge) return;  // the primary copy lives (or ended) elsewhere
    if (done.count(p.req->id) != 0) return;  // keep the first terminal state
    Terminal t;
    t.out.id = p.req->id;
    t.out.status = st;
    t.out.retries = p.attempts;
    t.out.steered_from = p.steered_from;
    t.out.node = static_cast<std::int64_t>(i);
    t.node_arrival_ns = p.arrival_ns;
    done.emplace(p.req->id, t);
  };

  auto record_failed = [&](const Pending& p, std::uint64_t dispatch_ns,
                           std::size_t i) {
    if (p.is_hedge) return;
    if (done.count(p.req->id) != 0) return;
    Terminal t;
    t.out.id = p.req->id;
    t.out.status = RequestStatus::FailedNodeDown;
    t.out.dispatch_ns = dispatch_ns;
    t.out.retries = p.attempts;
    t.out.steered_from = p.steered_from;
    t.out.node = static_cast<std::int64_t>(i);
    t.node_arrival_ns = p.arrival_ns;
    done.emplace(p.req->id, t);
  };

  auto record_complete = [&](const Pending& p, std::size_t i,
                             std::uint64_t dispatch_ns,
                             std::uint64_t completion_ns,
                             std::int64_t batch_size) {
    Terminal t;
    t.out.id = p.req->id;
    t.out.status =
        p.attempts > 0 ? RequestStatus::Retried : RequestStatus::Completed;
    t.out.dispatch_ns = dispatch_ns;
    t.out.completion_ns = completion_ns;
    t.out.batch_size = batch_size;
    t.out.slo_miss =
        p.req->deadline_ns != 0 && completion_ns > p.req->deadline_ns;
    t.out.retries = p.attempts;
    t.out.steered_from = p.steered_from;
    t.out.node = static_cast<std::int64_t>(i);
    t.node_arrival_ns = p.arrival_ns;
    t.by_hedge = p.is_hedge;
    const auto it = done.find(p.req->id);
    if (it == done.end()) {
      done.emplace(p.req->id, t);
    } else if (it->second.out.completion_ns == 0 ||
               completion_ns < it->second.out.completion_ns) {
      // A real completion overrides a shed/failed terminal; between two
      // completions (primary vs hedge racing) the earlier one wins.
      it->second = t;
    }
  };

  auto inbox_push = [&](std::size_t dest, const Pending& p) {
    auto& box = loops[dest].inbox;
    const auto pos = std::upper_bound(
        box.begin(), box.end(), p, [](const Pending& a, const Pending& b) {
          if (a.arrival_ns != b.arrival_ns) return a.arrival_ns < b.arrival_ns;
          if (a.req->id != b.req->id) return a.req->id < b.req->id;
          return a.is_hedge < b.is_hedge;
        });
    box.insert(pos, p);
  };

  // Least-loaded destination whose circuit is closed, excluding `from`;
  // falls back to the earliest-readmitted circuit when everything else is
  // ejected, and to nothing at all in a single-node fleet.
  auto pick_dest = [&](std::size_t from,
                       std::uint64_t t) -> std::optional<std::size_t> {
    std::optional<std::size_t> best;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == from || status_[j].ejected_until_ns > t) continue;
      if (!best || nodes_[j]->next_free_ns() < nodes_[*best]->next_free_ns()) {
        best = j;
      }
    }
    if (best.has_value()) return best;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == from) continue;
      if (!best ||
          status_[j].ejected_until_ns < status_[*best].ejected_until_ns) {
        best = j;
      }
    }
    return best;
  };

  // One in-flight copy was lost to a crash: burn a client retry if the
  // budget allows (exponential backoff + seeded jitter, ResilientChannel
  // shape), otherwise the request is a terminal FailedNodeDown.
  auto lose_in_flight = [&](Pending p, std::size_t i, std::uint64_t dispatch_ns,
                            std::uint64_t detected_ns) {
    if (p.is_hedge) return;  // silent: the primary copy is elsewhere
    const auto it = done.find(p.req->id);
    if (it != done.end() && it->second.out.completion_ns != 0) return;
    const std::int64_t budget =
        retry_.has_value()
            ? (p.req->retry_budget >= 0
                   ? p.req->retry_budget
                   : static_cast<std::int64_t>(retry_->max_retries))
            : 0;
    if (p.attempts >= budget) {
      record_failed(p, dispatch_ns, i);
      return;
    }
    const std::uint64_t backoff =
        retry_->backoff.timeout_for(static_cast<unsigned>(p.attempts));
    const std::uint64_t jit = retry_->backoff.max_jitter_ns > 0
                                  ? jitter.uniform(retry_->backoff.max_jitter_ns)
                                  : 0;
    ++p.attempts;
    ++p.strikes;
    p.steered_from = static_cast<std::int64_t>(i);
    p.arrival_ns = detected_ns + backoff + jit;
    const auto dest = pick_dest(i, p.arrival_ns);
    inbox_push(dest.value_or(i), p);
    failover_obs().retries.add();
  };

  // A crash was detected on node i at `t`: the dispatcher pays the
  // detection timeout, the node takes a strike (the circuit opens at the
  // threshold; probation re-ejects in one), and everything queued is
  // re-steered to the least-loaded live node. Without a destination the
  // queue rides out the outage in place, under a strike budget so an
  // unbounded outage still terminates every request.
  auto handle_failure = [&](std::size_t i, std::uint64_t t) {
    NodeLoop& nl = loops[i];
    FleetNodeStatus& st = status_[i];
    const std::uint64_t detected = t + detect_ns;
    nl.not_before_ns = detected;
    {
      static const std::uint32_t span_id = obs::SpanTracer::global().intern(
          obs::names::kSpanServingFailoverDetect);
      obs::ScopedLane lane_scope(static_cast<std::uint16_t>(i), 0);
      obs::SpanTracer::global().record(span_id, t, detected);
    }
    failover_obs().detections.add();
    serving_obs().dispatch_failures.add();
    ++st.failures_total;
    ++st.consecutive_failures;
    if (st.probation || st.consecutive_failures >= cfg.failure_threshold) {
      st.ejected_until_ns = detected + cooldown_ns;
      st.probation = true;  // half-open next time: one strike re-ejects
      ++st.ejections;
      serving_obs().ejections.add();
      st.consecutive_failures = 0;
    }
    const auto dest = pick_dest(i, detected);
    std::deque<Pending> keep;
    while (!nl.queue.empty()) {
      Pending p = nl.queue.front();
      nl.queue.pop_front();
      if (p.is_hedge) continue;  // hedge copies die with the node, silently
      ++p.strikes;
      if (p.strikes > kStrikeBudget) {
        record_failed(p, t, i);
        continue;
      }
      if (dest.has_value()) {
        p.arrival_ns = detected;
        p.steered_from = static_cast<std::int64_t>(i);
        inbox_push(*dest, p);
        failover_obs().resteered.add();
      } else {
        keep.push_back(p);
      }
    }
    nl.queue = std::move(keep);
  };

  auto next_candidate_arrival =
      [&](const NodeLoop& nl) -> std::optional<std::uint64_t> {
    std::optional<std::uint64_t> a;
    if (nl.next < nl.stream.size()) a = nl.stream[nl.next].arrival_ns;
    if (!nl.inbox.empty() && (!a.has_value() || nl.inbox.front().arrival_ns < *a)) {
      a = nl.inbox.front().arrival_ns;
    }
    return a;
  };

  // Admission merges the static stream with the inbox in arrival order
  // (stream wins ties — it was scheduled first); arrivals beyond the queue
  // capacity are shed immediately, exactly like the single-node path.
  auto admit_until = [&](std::size_t i, std::uint64_t t) {
    NodeLoop& nl = loops[i];
    while (true) {
      const bool has_s = nl.next < nl.stream.size();
      const bool has_b = !nl.inbox.empty();
      if (!has_s && !has_b) break;
      const bool take_stream =
          has_s && (!has_b || nl.stream[nl.next].arrival_ns <=
                                  nl.inbox.front().arrival_ns);
      const Pending& cand = take_stream ? nl.stream[nl.next] : nl.inbox.front();
      if (cand.arrival_ns > t) break;
      Pending p = cand;
      if (take_stream) {
        ++nl.next;
      } else {
        nl.inbox.pop_front();
      }
      if (window.queue_capacity > 0 &&
          static_cast<std::int64_t>(nl.queue.size()) >= window.queue_capacity) {
        record_shed(p, RequestStatus::ShedQueueFull, i);
      } else {
        if (tracing && p.req->trace_id != 0) {
          // One flow chain per request: the original copy starts it at the
          // client arrival; retried/re-steered/hedged copies add a step at
          // their re-admission, drawing the hop across nodes.
          TraceSites& ts = trace_sites();
          obs::ScopedLane ql(static_cast<std::uint16_t>(i), kQueueLaneTid);
          const bool original =
              p.attempts == 0 && p.steered_from < 0 && !p.is_hedge;
          ts.tracer.record_flow(
              ts.flow, p.req->trace_id,
              original ? p.req->arrival_ns : p.arrival_ns,
              original ? obs::FlowPhase::Start : obs::FlowPhase::Step);
        }
        nl.queue.push_back(p);
      }
    }
  };

  while (true) {
    // Pick the node with the earliest possible next dispatch (ties to the
    // lowest index) — a deterministic global virtual-time order.
    std::optional<std::size_t> pick;
    std::uint64_t pick_key = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const NodeLoop& nl = loops[i];
      std::optional<std::uint64_t> arr;
      if (!nl.queue.empty()) {
        arr = nl.queue.front().arrival_ns;
      } else {
        arr = next_candidate_arrival(nl);
      }
      if (!arr.has_value()) continue;  // node has no work
      const std::uint64_t key =
          std::max({nodes_[i]->next_free_ns(), *arr,
                    status_[i].ejected_until_ns, nl.not_before_ns});
      if (!pick.has_value() || key < pick_key) {
        pick = i;
        pick_key = key;
      }
    }
    if (!pick.has_value()) break;  // all queues, streams and inboxes drained
    const std::size_t i = *pick;
    NodeLoop& nl = loops[i];
    FleetNodeStatus& st = status_[i];

    if (nl.queue.empty()) {
      admit_until(i, *next_candidate_arrival(nl));
      if (nl.queue.empty()) continue;  // everything admitted was shed
    }
    const std::uint64_t head_arrival = nl.queue.front().arrival_ns;
    const std::uint64_t lane_free = std::max(
        {nodes_[i]->next_free_ns(), st.ejected_until_ns, nl.not_before_ns});
    std::uint64_t dispatch_at = std::max(lane_free, head_arrival);
    admit_until(i, dispatch_at);

    // Batch window, same policy as the single-node path with the inbox
    // merged in: each admitted arrival pushes the launch to its arrival
    // time, and an unfilled window launches at close.
    if (static_cast<std::int64_t>(nl.queue.size()) < window.max_batch) {
      const std::uint64_t close = std::max(dispatch_at, head_arrival + wait_ns);
      while (static_cast<std::int64_t>(nl.queue.size()) < window.max_batch) {
        const auto cand = next_candidate_arrival(nl);
        if (!cand.has_value() || *cand > close) break;
        admit_until(i, *cand);
        dispatch_at = std::max(dispatch_at, *cand);
      }
      if (static_cast<std::int64_t>(nl.queue.size()) < window.max_batch) {
        dispatch_at = close;
      }
      admit_until(i, dispatch_at);
    }

    // Dispatch probe: does the launch find the node dead?
    if (down_at(i, dispatch_at)) {
      handle_failure(i, dispatch_at);
      continue;
    }
    if (st.probation) {
      st.probation = false;  // half-open probe succeeded: circuit closes
      failover_obs().readmissions.add();
    }
    st.consecutive_failures = 0;

    // Assemble the batch: expired requests are shed, and copies whose twin
    // already completed in this batch's past are cancelled (hedge losers).
    std::vector<Pending> batch;
    std::vector<const ml::Tensor*> inputs;
    while (!nl.queue.empty() &&
           static_cast<std::int64_t>(batch.size()) < window.max_batch) {
      Pending p = nl.queue.front();
      nl.queue.pop_front();
      const auto dit = done.find(p.req->id);
      if (dit != done.end() && dit->second.out.completion_ns != 0 &&
          dit->second.out.completion_ns <= dispatch_at) {
        continue;  // the twin won before this launch — cancel the loser
      }
      if (window.shed_expired && p.req->deadline_ns != 0 &&
          p.req->deadline_ns < dispatch_at) {
        record_shed(p, RequestStatus::ShedExpired, i);
        continue;
      }
      batch.push_back(p);
      inputs.push_back(p.req->input);
    }
    if (batch.empty()) continue;  // the whole window expired or cancelled

    // Causal linkage, same shape as the single-node path. A retried copy's
    // wire span still covers only the wire; the backoff+detection gap
    // between it and this copy's node arrival is left uncovered on purpose
    // (trace_report shows it as explicit slack).
    BatchTraceInfo tinfo;
    std::vector<MemberTrace> members;
    if (tracing) {
      for (const Pending& p : batch) {
        if (p.req->trace_id == 0) continue;
        MemberTrace m;
        m.trace_id = p.req->trace_id;
        m.client_arrival_ns = p.req->arrival_ns;
        m.wire_end_ns = p.req->arrival_ns + p.wire_ns;
        m.node_arrival_ns = p.arrival_ns;
        m.queue_end_ns =
            std::min(dispatch_at, std::max(p.arrival_ns, lane_free));
        m.service_span_id = obs::SpanTracer::global().alloc_span_id();
        members.push_back(m);
        tinfo.member_trace_ids.push_back(p.req->trace_id);
      }
      if (!members.empty()) {
        tinfo.trace_id = members.front().trace_id;
        tinfo.parent_span_id = members.front().service_span_id;
      }
    }

    const std::uint64_t completion = nodes_[i]->serve_batch(
        inputs, dispatch_at, members.empty() ? nullptr : &tinfo);
    serving_obs().dispatches.add();
    tl.record_batch(dispatch_at, static_cast<std::int64_t>(batch.size()));
    tl.record_queue_depth(
        dispatch_at, static_cast<std::int64_t>(nl.queue.size() + batch.size()));

    // Mid-service interruption: a crash window opening before the batch
    // completes loses the whole batch at the crash instant; the dispatcher
    // notices a timeout later, and every member retries or fails.
    std::optional<std::uint64_t> crash;
    if (fault_plane_ != nullptr) {
      crash = fault_plane_->next_crash_after(
          fault_base_id_ + static_cast<std::uint32_t>(i), dispatch_at);
    }
    if (crash.has_value() && *crash < completion) {
      const std::uint64_t detected = *crash + detect_ns;
      for (const Pending& p : batch) {
        lose_in_flight(p, i, dispatch_at, detected);
      }
      handle_failure(i, *crash);
      continue;
    }

    // The batch really completed: record every member's causal tree (hedge
    // twins each get their own root; trace_report keeps the earliest).
    for (const MemberTrace& m : members) {
      record_member_trace(m, static_cast<std::uint16_t>(i), dispatch_at,
                          completion);
    }
    for (const Pending& p : batch) {
      record_complete(p, i, dispatch_at, completion,
                      static_cast<std::int64_t>(batch.size()));
    }

    // Hedging: a queue head that has already waited past the hedge delay
    // gets a duplicate on a second node; the first completion wins and the
    // loser is cancelled at its dispatch.
    if (hedging && !nl.queue.empty()) {
      const Pending& h = nl.queue.front();
      const auto dit = done.find(h.req->id);
      const bool settled =
          dit != done.end() && dit->second.out.completion_ns != 0;
      if (!h.is_hedge && !settled && hedged.count(h.req->id) == 0 &&
          std::max(nodes_[i]->next_free_ns(), h.arrival_ns) >=
              h.arrival_ns + hedge_ns) {
        const auto dest = pick_dest(i, dispatch_at);
        if (dest.has_value()) {
          Pending twin = h;
          twin.is_hedge = true;
          twin.arrival_ns = std::max(dispatch_at, h.arrival_ns);
          twin.steered_from = static_cast<std::int64_t>(i);
          inbox_push(*dest, twin);
          hedged.insert(h.req->id);
          failover_obs().hedges.add();
        }
      }
    }
  }

  // Finalize: every offered request must hold exactly one terminal outcome.
  std::vector<RequestOutcome> out;
  out.reserve(requests.size());
  for (const Request& r : requests) {
    const auto it = done.find(r.id);
    if (it == done.end()) {
      throw std::logic_error("serving fleet: request " + std::to_string(r.id) +
                             " reached no terminal outcome");
    }
    RequestOutcome o = it->second.out;
    o.arrival_ns = r.arrival_ns;  // client-side arrival: e2e includes the wire
    out.push_back(o);
    switch (o.status) {
      case RequestStatus::Completed:
      case RequestStatus::Retried:
        traffic_obs().completed.add();
        if (o.slo_miss) traffic_obs().slo_misses.add();
        traffic_obs().queue_wait_ns.observe(o.dispatch_ns -
                                            it->second.node_arrival_ns);
        traffic_obs().e2e_ns.observe(o.completion_ns - o.arrival_ns);
        serving_obs().request_quantile_ns.observe(o.completion_ns -
                                                  o.dispatch_ns);
        if (o.node >= 0) ++status_[static_cast<std::size_t>(o.node)].served;
        if (it->second.by_hedge) failover_obs().hedge_wins.add();
        tl.record_completed(o.completion_ns, o.completion_ns - o.arrival_ns,
                            o.slo_miss);
        break;
      case RequestStatus::ShedQueueFull:
        traffic_obs().shed_queue_full.add();
        tl.record_shed(o.arrival_ns);
        break;
      case RequestStatus::ShedExpired:
        traffic_obs().shed_expired.add();
        tl.record_shed(o.arrival_ns);
        break;
      case RequestStatus::FailedNodeDown:
        failover_obs().failed_requests.add();
        break;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RequestOutcome& a, const RequestOutcome& b) {
              return a.id < b.id;
            });
  sync_gpu_status();
  return out;
}

// Health-tracking dispatch loop: the stream is served in dispatch rounds;
// each round hands a quantum of images to every admitted node in parallel.
// A dispatch to a dead node costs the dispatcher a detection timeout and a
// failure count; `failure_threshold` consecutive failures open the node's
// circuit for `cooldown_seconds`, after which one half-open probe decides
// between re-admission (success closes the circuit) and immediate
// re-ejection. Load is re-steered across whatever is admitted, so with k of
// n nodes down the stream still completes — slower, never hung.
double ServingFleet::estimate_resilient(const ml::Tensor& image,
                                        std::int64_t count) {
  const FleetResilienceConfig& cfg = *resilience_;
  if (alive_node_count() == 0) {
    throw runtime::TransientError("serving fleet: no live nodes");
  }

  // Per-image service seconds on one healthy node (all nodes are identical
  // by construction, so one probe calibrates the fleet).
  double per_image_s = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!status_[i].alive) continue;
    const std::int64_t probe = config_.threads * 4;
    per_image_s = nodes_[i]->estimate_stream_seconds(image, probe) /
                  static_cast<double>(probe);
    break;
  }

  // Shipping cost per request, inflated by the expected retransmissions
  // under the configured loss rate: 1/(1-p) transmissions each paying the
  // wire cost, plus p/(1-p) RPC timeouts spent discovering the losses.
  const double wire_s =
      static_cast<double>(config_.model.netshield_ns(image.byte_size()) +
                          config_.model.lan_transfer_ns(image.byte_size())) /
      1e9;
  const double p = cfg.request_drop_prob;
  if (p < 0 || p >= 1) {
    throw std::invalid_argument("fleet: request_drop_prob must be in [0,1)");
  }
  const double per_request_s =
      wire_s / (1 - p) + cfg.rpc_timeout_seconds * p / (1 - p);

  const auto detect_ns =
      static_cast<std::uint64_t>(cfg.detect_timeout_seconds * 1e9);
  const auto cooldown_ns =
      static_cast<std::uint64_t>(cfg.cooldown_seconds * 1e9);

  // Each estimate call is its own timeline (virtual time restarts at 0), so
  // deadlines from a previous stream are stale: previously ejected nodes
  // start half-open — probed immediately, and their probation flag still
  // means one strike re-ejects.
  for (auto& s : status_) s.ejected_until_ns = 0;

  std::uint64_t now_ns = 0;
  std::int64_t remaining = count;
  while (remaining > 0) {
    // Admission: closed circuits plus any node whose cool-down expired
    // (half-open probe).
    std::vector<std::size_t> admitted;
    for (std::size_t i = 0; i < status_.size(); ++i) {
      if (status_[i].ejected_until_ns <= now_ns) admitted.push_back(i);
    }
    if (admitted.empty()) {
      // Every circuit is open. Jump to the earliest re-admission; the
      // all-dead case was rejected above, and a live node's probe will
      // succeed then, so this cannot loop forever.
      std::uint64_t earliest = status_[0].ejected_until_ns;
      for (const auto& s : status_) {
        earliest = std::min(earliest, s.ejected_until_ns);
      }
      now_ns = earliest;
      continue;
    }

    // Dispatcher-side failure detection is serial (the dispatcher probes);
    // service on healthy nodes runs in parallel.
    double round_s = 0;
    std::int64_t dispatched = 0;
    for (const std::size_t i : admitted) {
      FleetNodeStatus& s = status_[i];
      if (!s.alive) {
        ++s.failures_total;
        ++s.consecutive_failures;
        serving_obs().dispatch_failures.add();
        now_ns += detect_ns;
        if (s.probation || s.consecutive_failures >= cfg.failure_threshold) {
          s.ejected_until_ns = now_ns + cooldown_ns;
          s.probation = true;  // half-open next time: one strike re-ejects
          ++s.ejections;
          serving_obs().ejections.add();
          s.consecutive_failures = 0;
        }
        continue;
      }
      s.consecutive_failures = 0;
      s.probation = false;
      const std::int64_t quantum =
          std::min<std::int64_t>(cfg.dispatch_batch, remaining - dispatched);
      if (quantum <= 0) break;
      dispatched += quantum;
      s.served += quantum;
      serving_obs().dispatches.add();
      round_s = std::max(
          round_s, static_cast<double>(quantum) * (per_image_s + per_request_s));
    }
    remaining -= dispatched;
    now_ns += static_cast<std::uint64_t>(round_s * 1e9);
  }
  return static_cast<double>(now_ns) / 1e9;
}

}  // namespace stf::core
