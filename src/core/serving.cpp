#include "core/serving.h"

namespace stf::core {

ServingNode::ServingNode(const ml::lite::FlatModel& model,
                         ServingConfig config)
    : config_(std::move(config)) {
  tee::CostModel cost = config_.model;
  if (config_.threads > config_.physical_cores) {
    cost.flops_per_second *= config_.hyperthread_efficiency;
  }
  if (config_.mode == tee::TeeMode::Hardware && config_.threads > 1) {
    const double contention =
        config_.threads * (config_.threads > config_.physical_cores
                               ? config_.oversubscribed_fault_factor
                               : 1.0);
    cost.page_fault_ns =
        static_cast<std::uint64_t>(cost.page_fault_ns * contention);
    cost.page_load_ns =
        static_cast<std::uint64_t>(cost.page_load_ns * contention);
    cost.page_evict_ns =
        static_cast<std::uint64_t>(cost.page_evict_ns * contention);
  }
  if (config_.kernel_threads == 1) {
    config_.inference.kernels = ml::kernels::KernelContext{};  // serial
  } else if (config_.kernel_threads > 1) {
    kernel_pool_ =
        std::make_unique<runtime::ThreadPool>(config_.kernel_threads);
    config_.inference.kernels = ml::kernels::KernelContext{
        kernel_pool_.get(), kernel_pool_->thread_count()};
  }  // 0: keep the shared-pool default from InferenceOptions
  platform_ = std::make_unique<tee::Platform>("serving-node", config_.mode,
                                              cost, config_.threads);
  service_ = std::make_unique<InferenceService>(*platform_, model,
                                                config_.inference);
  lanes_.resize(config_.threads);
  if (auto* enclave = const_cast<tee::Enclave*>(service_->enclave())) {
    for (unsigned t = 0; t < config_.threads; ++t) {
      scratch_.push_back(enclave->alloc_region(
          "thread-scratch-" + std::to_string(t), config_.per_thread_scratch));
    }
  }
}

void ServingNode::classify_on_lane(unsigned lane, const ml::Tensor& image) {
  platform_->set_active_lane(&lanes_[lane]);
  if (auto* enclave = const_cast<tee::Enclave*>(service_->enclave())) {
    enclave->access(scratch_[lane], 0, config_.per_thread_scratch, true);
  }
  (void)service_->classify(image);
  platform_->set_active_lane(nullptr);
}

double ServingNode::classify_stream(const ml::Tensor& image,
                                    std::int64_t count) {
  const std::uint64_t start = lanes_.empty() ? 0 : lanes_[0].now_ns();
  for (std::int64_t i = 0; i < count; ++i) {
    classify_on_lane(static_cast<unsigned>(i % config_.threads), image);
  }
  std::uint64_t end = start;
  for (const auto& lane : lanes_) end = std::max(end, lane.now_ns());
  return static_cast<double>(end - start) / 1e9;
}

double ServingNode::estimate_stream_seconds(const ml::Tensor& image,
                                            std::int64_t count,
                                            int warmup_rounds,
                                            int measured_rounds) {
  for (int r = 0; r < warmup_rounds; ++r) {
    for (unsigned lane = 0; lane < config_.threads; ++lane) {
      classify_on_lane(lane, image);
    }
  }
  const std::uint64_t before = lanes_[0].now_ns();
  for (int r = 0; r < measured_rounds; ++r) {
    for (unsigned lane = 0; lane < config_.threads; ++lane) {
      classify_on_lane(lane, image);
    }
  }
  const double round_s =
      static_cast<double>(lanes_[0].now_ns() - before) / 1e9 / measured_rounds;
  const std::int64_t rounds =
      (count + config_.threads - 1) / config_.threads;
  return round_s * static_cast<double>(rounds);
}

ServingFleet::ServingFleet(const ml::lite::FlatModel& model,
                           ServingConfig config, unsigned nodes)
    : config_(std::move(config)) {
  for (unsigned n = 0; n < nodes; ++n) {
    nodes_.push_back(std::make_unique<ServingNode>(model, config_));
  }
}

double ServingFleet::estimate_stream_seconds(const ml::Tensor& image,
                                             std::int64_t count) {
  const std::int64_t per_node =
      (count + static_cast<std::int64_t>(nodes_.size()) - 1) /
      static_cast<std::int64_t>(nodes_.size());
  double slowest = 0;
  for (auto& node : nodes_) {
    slowest = std::max(slowest, node->estimate_stream_seconds(image, per_node));
  }
  // Request distribution: each image ships through the network shield and
  // the LAN to its node.
  const double per_request_s =
      static_cast<double>(config_.model.netshield_ns(image.byte_size()) +
                          config_.model.lan_transfer_ns(image.byte_size())) /
      1e9;
  return slowest + per_request_s * static_cast<double>(per_node);
}

}  // namespace stf::core
