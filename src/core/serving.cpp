#include "core/serving.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/span.h"
#include "runtime/errors.h"

namespace stf::core {
namespace {

struct ServingObs {
  obs::Counter& dispatches = obs::Registry::global().counter(
      obs::names::kServingDispatches, "work quanta dispatched to fleet nodes");
  obs::Counter& dispatch_failures = obs::Registry::global().counter(
      obs::names::kServingDispatchFailures, "probes that found a node dead");
  obs::Counter& ejections = obs::Registry::global().counter(
      obs::names::kServingEjections, "circuit-breaker ejections");
  obs::QuantileSeries& request_quantile_ns = obs::Registry::global().quantiles(
      obs::names::kServingRequestQuantileNs,
      "exact p50/p95/p99 of per-request lane latency on serving nodes");
};

ServingObs& serving_obs() {
  static ServingObs* o = new ServingObs();
  return *o;
}

// Request-plane traffic series, kept separate from ServingObs so code paths
// that never run serve_trace (all pre-existing benches) do not register
// them — registry exports list every registered series and the committed
// BENCH baselines must stay byte-identical with batching off.
struct TrafficObs {
  obs::Counter& offered = obs::Registry::global().counter(
      obs::names::kServingRequestsOffered, "requests offered to serve_trace");
  obs::Counter& completed = obs::Registry::global().counter(
      obs::names::kServingRequestsCompleted, "requests served to completion");
  obs::Counter& shed_queue_full = obs::Registry::global().counter(
      obs::names::kServingShedQueueFull,
      "requests shed at admission (queue at capacity)");
  obs::Counter& shed_expired = obs::Registry::global().counter(
      obs::names::kServingShedExpired,
      "requests shed at dispatch (deadline already passed)");
  obs::Counter& slo_misses = obs::Registry::global().counter(
      obs::names::kServingSloMisses, "completed requests past their deadline");
  obs::QuantileSeries& queue_wait_ns = obs::Registry::global().quantiles(
      obs::names::kServingQueueWaitQuantileNs,
      "exact p50/p95/p99 of arrival-to-dispatch queueing delay");
  obs::QuantileSeries& e2e_ns = obs::Registry::global().quantiles(
      obs::names::kServingE2eQuantileNs,
      "exact p50/p95/p99 of arrival-to-completion request latency");
};

TrafficObs& traffic_obs() {
  static TrafficObs* o = new TrafficObs();
  return *o;
}

/// Nearest-rank quantile (same rule as obs::QuantileSeries): the
/// ceil(q*n)-th smallest, rank clamped to [1, n]; 0 on an empty set.
std::uint64_t nearest_rank(std::vector<std::uint64_t>& values, double q) {
  if (values.empty()) return 0;
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  rank = std::min(std::max<std::size_t>(rank, 1), values.size());
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(rank - 1),
                   values.end());
  return values[rank - 1];
}

}  // namespace

TrafficSummary summarize(const std::vector<RequestOutcome>& outcomes) {
  TrafficSummary s;
  std::vector<std::uint64_t> e2e;
  bool first = true;
  for (const RequestOutcome& o : outcomes) {
    ++s.offered;
    if (first || o.arrival_ns < s.first_arrival_ns) {
      s.first_arrival_ns = o.arrival_ns;
      first = false;
    }
    switch (o.status) {
      case RequestStatus::Completed:
        ++s.completed;
        if (o.slo_miss) ++s.slo_misses;
        s.last_completion_ns = std::max(s.last_completion_ns, o.completion_ns);
        e2e.push_back(o.completion_ns - o.arrival_ns);
        break;
      case RequestStatus::ShedQueueFull: ++s.shed_queue_full; break;
      case RequestStatus::ShedExpired: ++s.shed_expired; break;
    }
  }
  s.p50_ns = nearest_rank(e2e, 0.50);
  s.p95_ns = nearest_rank(e2e, 0.95);
  s.p99_ns = nearest_rank(e2e, 0.99);
  return s;
}

ServingNode::ServingNode(const ml::lite::FlatModel& model,
                         ServingConfig config, unsigned ordinal)
    : config_(std::move(config)), ordinal_(ordinal) {
  tee::CostModel cost = config_.model;
  if (config_.threads > config_.physical_cores) {
    cost.flops_per_second *= config_.hyperthread_efficiency;
  }
  if (config_.mode == tee::TeeMode::Hardware && config_.threads > 1) {
    const double contention =
        config_.threads * (config_.threads > config_.physical_cores
                               ? config_.oversubscribed_fault_factor
                               : 1.0);
    cost.page_fault_ns =
        static_cast<std::uint64_t>(cost.page_fault_ns * contention);
    cost.page_load_ns =
        static_cast<std::uint64_t>(cost.page_load_ns * contention);
    cost.page_evict_ns =
        static_cast<std::uint64_t>(cost.page_evict_ns * contention);
  }
  if (config_.kernel_threads == 1) {
    config_.inference.kernels = ml::kernels::KernelContext{};  // serial
  } else if (config_.kernel_threads > 1) {
    kernel_pool_ =
        std::make_unique<runtime::ThreadPool>(config_.kernel_threads);
    config_.inference.kernels = ml::kernels::KernelContext{
        kernel_pool_.get(), kernel_pool_->thread_count()};
  }  // 0: keep the shared-pool default from InferenceOptions
  platform_ = std::make_unique<tee::Platform>("serving-node", config_.mode,
                                              cost, config_.threads);
  service_ = std::make_unique<InferenceService>(*platform_, model,
                                                config_.inference);
  lanes_.resize(config_.threads);
  if (auto* enclave = const_cast<tee::Enclave*>(service_->enclave())) {
    for (unsigned t = 0; t < config_.threads; ++t) {
      scratch_.push_back(enclave->alloc_region(
          "thread-scratch-" + std::to_string(t), config_.per_thread_scratch));
    }
  }
}

void ServingNode::classify_on_lane(unsigned lane, const ml::Tensor& image) {
  // Spans/profiles recorded inside this request carry (node ordinal, lane)
  // so the Chrome trace draws one row per simulated core lane.
  obs::ScopedLane lane_scope(static_cast<std::uint16_t>(ordinal_),
                             static_cast<std::uint16_t>(lane));
  platform_->set_active_lane(&lanes_[lane]);
  const std::uint64_t start_ns = lanes_[lane].now_ns();
  if (auto* enclave = const_cast<tee::Enclave*>(service_->enclave())) {
    enclave->access(scratch_[lane], 0, config_.per_thread_scratch, true);
  }
  (void)service_->classify(image);
  serving_obs().request_quantile_ns.observe(lanes_[lane].now_ns() - start_ns);
  platform_->set_active_lane(nullptr);
}

unsigned ServingNode::least_loaded_lane() const {
  unsigned best = 0;
  for (unsigned i = 1; i < lanes_.size(); ++i) {
    if (lanes_[i].now_ns() < lanes_[best].now_ns()) best = i;
  }
  return best;
}

double ServingNode::classify_stream(const ml::Tensor& image,
                                    std::int64_t count) {
  const std::uint64_t start = lanes_.empty() ? 0 : lanes_[0].now_ns();
  for (std::int64_t i = 0; i < count; ++i) {
    // Least-loaded dispatch instead of round-robin: fixed-order assignment
    // drifts out of balance as per-request costs diverge (reclaim jitter,
    // mixed batch sizes), leaving some lanes idle while others queue.
    classify_on_lane(least_loaded_lane(), image);
  }
  std::uint64_t end = start;
  for (const auto& lane : lanes_) end = std::max(end, lane.now_ns());
  return static_cast<double>(end - start) / 1e9;
}

std::vector<RequestOutcome> ServingNode::serve_trace(
    const std::vector<Request>& requests, const BatchWindowConfig& window) {
  if (window.max_batch < 1) {
    throw std::invalid_argument("serve_trace: max_batch must be >= 1");
  }
  if (window.max_wait_s < 0) {
    throw std::invalid_argument("serve_trace: max_wait_s must be >= 0");
  }
  const auto wait_ns =
      static_cast<std::uint64_t>(std::llround(window.max_wait_s * 1e9));

  std::vector<RequestOutcome> outcomes;
  outcomes.reserve(requests.size());
  traffic_obs().offered.add(requests.size());

  std::deque<const Request*> pending;
  std::size_t next = 0;

  // Admission control: requests arriving while the queue is at capacity are
  // shed immediately (the client gets an instant reject, not a slow miss).
  auto admit_until = [&](std::uint64_t t) {
    while (next < requests.size() && requests[next].arrival_ns <= t) {
      const Request& r = requests[next++];
      if (window.queue_capacity > 0 &&
          static_cast<std::int64_t>(pending.size()) >= window.queue_capacity) {
        RequestOutcome o;
        o.id = r.id;
        o.status = RequestStatus::ShedQueueFull;
        o.arrival_ns = r.arrival_ns;
        outcomes.push_back(o);
        traffic_obs().shed_queue_full.add();
      } else {
        pending.push_back(&r);
      }
    }
  };

  while (next < requests.size() || !pending.empty()) {
    if (pending.empty()) {
      admit_until(requests[next].arrival_ns);
      continue;
    }
    const unsigned lane = least_loaded_lane();
    const std::uint64_t head_arrival = pending.front()->arrival_ns;
    std::uint64_t dispatch_at = std::max(lanes_[lane].now_ns(), head_arrival);
    admit_until(dispatch_at);

    // Batch window: the queue head waits up to `wait_ns` for the batch to
    // fill; each admitted arrival pushes the launch to its arrival time,
    // and an unfilled window launches at close.
    if (static_cast<std::int64_t>(pending.size()) < window.max_batch) {
      const std::uint64_t close = std::max(dispatch_at, head_arrival + wait_ns);
      while (static_cast<std::int64_t>(pending.size()) < window.max_batch &&
             next < requests.size() && requests[next].arrival_ns <= close) {
        const std::uint64_t t = requests[next].arrival_ns;
        admit_until(t);
        dispatch_at = std::max(dispatch_at, t);
      }
      if (static_cast<std::int64_t>(pending.size()) < window.max_batch) {
        dispatch_at = close;
      }
      admit_until(dispatch_at);
    }

    // Pop the batch, shedding requests whose deadline already passed — a
    // guaranteed SLO miss is not worth a batch slot.
    std::vector<const Request*> batch;
    std::vector<const ml::Tensor*> batch_inputs;
    while (!pending.empty() &&
           static_cast<std::int64_t>(batch.size()) < window.max_batch) {
      const Request* r = pending.front();
      pending.pop_front();
      if (window.shed_expired && r->deadline_ns != 0 &&
          r->deadline_ns < dispatch_at) {
        RequestOutcome o;
        o.id = r->id;
        o.status = RequestStatus::ShedExpired;
        o.arrival_ns = r->arrival_ns;
        outcomes.push_back(o);
        traffic_obs().shed_expired.add();
        continue;
      }
      batch.push_back(r);
      batch_inputs.push_back(r->input);
    }
    if (batch.empty()) continue;  // the whole window expired

    obs::ScopedLane lane_scope(static_cast<std::uint16_t>(ordinal_),
                               static_cast<std::uint16_t>(lane));
    platform_->set_active_lane(&lanes_[lane]);
    lanes_[lane].advance_to(dispatch_at);  // lane idles until the batch launch
    if (auto* enclave = const_cast<tee::Enclave*>(service_->enclave())) {
      enclave->access(scratch_[lane], 0, config_.per_thread_scratch, true);
    }
    (void)service_->classify_batch(batch_inputs);
    const std::uint64_t completion = lanes_[lane].now_ns();
    platform_->set_active_lane(nullptr);

    for (const Request* r : batch) {
      RequestOutcome o;
      o.id = r->id;
      o.status = RequestStatus::Completed;
      o.arrival_ns = r->arrival_ns;
      o.dispatch_ns = dispatch_at;
      o.completion_ns = completion;
      o.batch_size = static_cast<std::int64_t>(batch.size());
      o.slo_miss = r->deadline_ns != 0 && completion > r->deadline_ns;
      outcomes.push_back(o);
      traffic_obs().completed.add();
      if (o.slo_miss) traffic_obs().slo_misses.add();
      traffic_obs().queue_wait_ns.observe(dispatch_at - r->arrival_ns);
      traffic_obs().e2e_ns.observe(completion - r->arrival_ns);
      serving_obs().request_quantile_ns.observe(completion - dispatch_at);
    }
  }

  std::sort(outcomes.begin(), outcomes.end(),
            [](const RequestOutcome& a, const RequestOutcome& b) {
              return a.id < b.id;
            });
  return outcomes;
}

double ServingNode::estimate_stream_seconds(const ml::Tensor& image,
                                            std::int64_t count,
                                            int warmup_rounds,
                                            int measured_rounds) {
  for (int r = 0; r < warmup_rounds; ++r) {
    for (unsigned lane = 0; lane < config_.threads; ++lane) {
      classify_on_lane(lane, image);
    }
  }
  const std::uint64_t before = lanes_[0].now_ns();
  for (int r = 0; r < measured_rounds; ++r) {
    for (unsigned lane = 0; lane < config_.threads; ++lane) {
      classify_on_lane(lane, image);
    }
  }
  const double round_s =
      static_cast<double>(lanes_[0].now_ns() - before) / 1e9 / measured_rounds;
  const std::int64_t rounds =
      (count + config_.threads - 1) / config_.threads;
  return round_s * static_cast<double>(rounds);
}

ServingFleet::ServingFleet(const ml::lite::FlatModel& model,
                           ServingConfig config, unsigned nodes)
    : config_(std::move(config)) {
  for (unsigned n = 0; n < nodes; ++n) {
    nodes_.push_back(std::make_unique<ServingNode>(model, config_, n));
  }
  status_.resize(nodes_.size());
}

void ServingFleet::configure_resilience(FleetResilienceConfig cfg) {
  resilience_ = cfg;
}

void ServingFleet::fail_node(unsigned index) {
  status_.at(index).alive = false;
  if (!resilience_.has_value()) resilience_ = FleetResilienceConfig{};
}

void ServingFleet::restore_node(unsigned index) {
  status_.at(index).alive = true;
}

unsigned ServingFleet::alive_node_count() const {
  unsigned n = 0;
  for (const auto& s : status_) n += s.alive ? 1 : 0;
  return n;
}

double ServingFleet::estimate_stream_seconds(const ml::Tensor& image,
                                             std::int64_t count) {
  if (resilience_.has_value()) return estimate_resilient(image, count);
  const std::int64_t per_node =
      (count + static_cast<std::int64_t>(nodes_.size()) - 1) /
      static_cast<std::int64_t>(nodes_.size());
  double slowest = 0;
  for (auto& node : nodes_) {
    slowest = std::max(slowest, node->estimate_stream_seconds(image, per_node));
  }
  // Request distribution: each image ships through the network shield and
  // the LAN to its node.
  const double per_request_s =
      static_cast<double>(config_.model.netshield_ns(image.byte_size()) +
                          config_.model.lan_transfer_ns(image.byte_size())) /
      1e9;
  return slowest + per_request_s * static_cast<double>(per_node);
}

std::vector<RequestOutcome> ServingFleet::serve_trace(
    const std::vector<Request>& requests, const BatchWindowConfig& window) {
  if (alive_node_count() == 0) {
    throw runtime::TransientError("serving fleet: no live nodes");
  }
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < status_.size(); ++i) {
    if (status_[i].alive) live.push_back(i);
  }

  // Partition round-robin by request order; each request reaches its node's
  // queue only after paying the network shield + LAN shipping cost.
  std::vector<std::vector<Request>> shifted(live.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Request r = requests[i];
    const std::uint64_t bytes = r.input->byte_size();
    r.arrival_ns += config_.model.netshield_ns(bytes) +
                    config_.model.lan_transfer_ns(bytes);
    shifted[i % live.size()].push_back(r);
  }

  std::vector<RequestOutcome> merged;
  merged.reserve(requests.size());
  for (std::size_t k = 0; k < live.size(); ++k) {
    std::vector<RequestOutcome> part =
        nodes_[live[k]]->serve_trace(shifted[k], window);
    status_[live[k]].served +=
        static_cast<std::int64_t>(summarize(part).completed);
    merged.insert(merged.end(), part.begin(), part.end());
  }

  // Report client-side arrivals so e2e latency includes the wire; deadlines
  // were absolute all along, so slo_miss already accounts for it.
  std::unordered_map<std::int64_t, std::uint64_t> client_arrival;
  client_arrival.reserve(requests.size());
  for (const Request& r : requests) client_arrival[r.id] = r.arrival_ns;
  for (RequestOutcome& o : merged) {
    const auto it = client_arrival.find(o.id);
    if (it != client_arrival.end()) o.arrival_ns = it->second;
  }
  std::sort(merged.begin(), merged.end(),
            [](const RequestOutcome& a, const RequestOutcome& b) {
              return a.id < b.id;
            });
  return merged;
}

// Health-tracking dispatch loop: the stream is served in dispatch rounds;
// each round hands a quantum of images to every admitted node in parallel.
// A dispatch to a dead node costs the dispatcher a detection timeout and a
// failure count; `failure_threshold` consecutive failures open the node's
// circuit for `cooldown_seconds`, after which one half-open probe decides
// between re-admission (success closes the circuit) and immediate
// re-ejection. Load is re-steered across whatever is admitted, so with k of
// n nodes down the stream still completes — slower, never hung.
double ServingFleet::estimate_resilient(const ml::Tensor& image,
                                        std::int64_t count) {
  const FleetResilienceConfig& cfg = *resilience_;
  if (alive_node_count() == 0) {
    throw runtime::TransientError("serving fleet: no live nodes");
  }

  // Per-image service seconds on one healthy node (all nodes are identical
  // by construction, so one probe calibrates the fleet).
  double per_image_s = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!status_[i].alive) continue;
    const std::int64_t probe = config_.threads * 4;
    per_image_s = nodes_[i]->estimate_stream_seconds(image, probe) /
                  static_cast<double>(probe);
    break;
  }

  // Shipping cost per request, inflated by the expected retransmissions
  // under the configured loss rate: 1/(1-p) transmissions each paying the
  // wire cost, plus p/(1-p) RPC timeouts spent discovering the losses.
  const double wire_s =
      static_cast<double>(config_.model.netshield_ns(image.byte_size()) +
                          config_.model.lan_transfer_ns(image.byte_size())) /
      1e9;
  const double p = cfg.request_drop_prob;
  if (p < 0 || p >= 1) {
    throw std::invalid_argument("fleet: request_drop_prob must be in [0,1)");
  }
  const double per_request_s =
      wire_s / (1 - p) + cfg.rpc_timeout_seconds * p / (1 - p);

  const auto detect_ns =
      static_cast<std::uint64_t>(cfg.detect_timeout_seconds * 1e9);
  const auto cooldown_ns =
      static_cast<std::uint64_t>(cfg.cooldown_seconds * 1e9);

  // Each estimate call is its own timeline (virtual time restarts at 0), so
  // deadlines from a previous stream are stale: previously ejected nodes
  // start half-open — probed immediately, and their probation flag still
  // means one strike re-ejects.
  for (auto& s : status_) s.ejected_until_ns = 0;

  std::uint64_t now_ns = 0;
  std::int64_t remaining = count;
  while (remaining > 0) {
    // Admission: closed circuits plus any node whose cool-down expired
    // (half-open probe).
    std::vector<std::size_t> admitted;
    for (std::size_t i = 0; i < status_.size(); ++i) {
      if (status_[i].ejected_until_ns <= now_ns) admitted.push_back(i);
    }
    if (admitted.empty()) {
      // Every circuit is open. Jump to the earliest re-admission; the
      // all-dead case was rejected above, and a live node's probe will
      // succeed then, so this cannot loop forever.
      std::uint64_t earliest = status_[0].ejected_until_ns;
      for (const auto& s : status_) {
        earliest = std::min(earliest, s.ejected_until_ns);
      }
      now_ns = earliest;
      continue;
    }

    // Dispatcher-side failure detection is serial (the dispatcher probes);
    // service on healthy nodes runs in parallel.
    double round_s = 0;
    std::int64_t dispatched = 0;
    for (const std::size_t i : admitted) {
      FleetNodeStatus& s = status_[i];
      if (!s.alive) {
        ++s.failures_total;
        ++s.consecutive_failures;
        serving_obs().dispatch_failures.add();
        now_ns += detect_ns;
        if (s.probation || s.consecutive_failures >= cfg.failure_threshold) {
          s.ejected_until_ns = now_ns + cooldown_ns;
          s.probation = true;  // half-open next time: one strike re-ejects
          ++s.ejections;
          serving_obs().ejections.add();
          s.consecutive_failures = 0;
        }
        continue;
      }
      s.consecutive_failures = 0;
      s.probation = false;
      const std::int64_t quantum =
          std::min<std::int64_t>(cfg.dispatch_batch, remaining - dispatched);
      if (quantum <= 0) break;
      dispatched += quantum;
      s.served += quantum;
      serving_obs().dispatches.add();
      round_s = std::max(
          round_s, static_cast<double>(quantum) * (per_image_s + per_request_s));
    }
    remaining -= dispatched;
    now_ns += static_cast<std::uint64_t>(round_s * 1e9);
  }
  return static_cast<double>(now_ns) / 1e9;
}

}  // namespace stf::core
