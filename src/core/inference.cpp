#include "core/inference.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/profile.h"
#include "obs/span.h"

namespace stf::core {
namespace {

struct InferenceObs {
  obs::Counter& requests = obs::Registry::global().counter(
      obs::names::kInferenceRequests, "classify() requests served");
  obs::Histogram& request_ns = obs::Registry::global().histogram(
      obs::names::kInferenceRequestNs, obs::latency_edges_ns(),
      "end-to-end classify() virtual latency");
  obs::QuantileSeries& request_quantile_ns = obs::Registry::global().quantiles(
      obs::names::kInferenceRequestQuantileNs,
      "exact p50/p95/p99 of classify() virtual latency");
  std::uint32_t request_span =
      obs::SpanTracer::global().intern(obs::names::kSpanInferenceRequest);
};

InferenceObs& inference_obs() {
  static InferenceObs* o = new InferenceObs();
  return *o;
}

// Kept separate from InferenceObs so single-request benches that never call
// classify_batch do not register these series (registry exports list every
// registered series, and committed BENCH baselines must stay byte-identical
// when batching is off).
struct BatchObs {
  obs::Counter& batches = obs::Registry::global().counter(
      obs::names::kInferenceBatches, "classify_batch() container invocations");
  std::uint32_t batch_span =
      obs::SpanTracer::global().intern(obs::names::kSpanInferenceBatch);
};

BatchObs& batch_obs() {
  static BatchObs* o = new BatchObs();
  return *o;
}

tee::EnclaveImage image_for(const InferenceOptions& options) {
  return tee::EnclaveImage{
      .name = options.container_name,
      .content = crypto::to_bytes("stf-classifier:" + options.container_name),
      .binary_bytes = options.binary_bytes,
  };
}

}  // namespace

InferenceService::InferenceService(tee::Platform& platform,
                                   ml::lite::FlatModel model,
                                   InferenceOptions options)
    : platform_(platform), options_(std::move(options)),
      model_(std::move(model)) {
  tee::MemoryEnv* env = nullptr;
  if (platform_.mode() == tee::TeeMode::Native) {
    native_env_ = std::make_unique<tee::NativeEnv>(platform_.model(),
                                                   platform_.base_clock());
    env = native_env_.get();
  } else {
    enclave_ = platform_.launch_enclave(image_for(options_));
    enclave_->set_runtime_overhead(options_.runtime_overhead);
    enclave_->set_compute_bytes_per_flop(options_.bytes_per_flop);
    enclave_env_ = std::make_unique<tee::EnclaveEnv>(*enclave_);
    env = enclave_env_.get();
  }
  interpreter_ = std::make_unique<ml::lite::LiteInterpreter>(
      *model_, env, options_.kernels, options_.weight_streaming,
      options_.int8_compute, options_.gpu_offload, options_.slalom);
}

InferenceService::InferenceService(tee::Platform& platform,
                                   ml::Graph frozen_graph,
                                   InferenceOptions options)
    : platform_(platform), options_(std::move(options)),
      graph_(std::move(frozen_graph)) {
  options_.full_tensorflow = true;
  if (options_.int8_compute) {
    throw std::invalid_argument(
        "InferenceService: int8_compute is Lite-path only");
  }
  tee::MemoryEnv* env = nullptr;
  if (platform_.mode() == tee::TeeMode::Native) {
    native_env_ = std::make_unique<tee::NativeEnv>(platform_.model(),
                                                   platform_.base_clock());
    env = native_env_.get();
  } else {
    enclave_ = platform_.launch_enclave(image_for(options_));
    enclave_->set_runtime_overhead(options_.runtime_overhead);
    enclave_->set_compute_bytes_per_flop(options_.bytes_per_flop);
    enclave_env_ = std::make_unique<tee::EnclaveEnv>(*enclave_);
    env = enclave_env_.get();
    if (options_.framework_heap_bytes > 0) {
      heap_region_ = enclave_->alloc_region("framework-heap",
                                            options_.framework_heap_bytes);
    }
  }
  session_ = std::make_unique<ml::Session>(
      *graph_, env, options_.kernels,
      ml::SessionOptions{.use_memory_planner = options_.memory_planner,
                         .weight_streaming = options_.weight_streaming,
                         .gpu_offload = options_.gpu_offload,
                         .slalom = options_.slalom});
}

InferenceService::~InferenceService() = default;

void InferenceService::set_gpu_corruption(
    ml::GpuOffloadEngine::CorruptionHook hook) {
  if (interpreter_) {
    interpreter_->set_gpu_corruption(std::move(hook));
  } else if (session_) {
    session_->set_gpu_corruption(std::move(hook));
  }
}

const ml::SlalomStats* InferenceService::slalom_stats() const {
  if (interpreter_) return interpreter_->slalom_stats();
  if (session_) return session_->slalom_stats();
  return nullptr;
}

void InferenceService::set_offload_active(bool on) {
  if (interpreter_) interpreter_->set_gpu_offload_enabled(on);
  if (session_) session_->set_gpu_offload_enabled(on);
}

void InferenceService::note_gpu_failure() {
  ++gpu_fallbacks_;
  ml::GpuOffloadEngine* engine =
      interpreter_ ? interpreter_->gpu_engine()
                   : (session_ ? session_->gpu_engine() : nullptr);
  if (engine != nullptr) engine->note_fallback();
  if (!gpu_distrusted_ && gpu_fallbacks_ >= options_.slalom.distrust_after) {
    // Strike threshold reached: the GPU (or whatever sits on the PCIe path
    // to it) is lying too often to be worth re-verifying. Serve in-enclave
    // for the rest of this service's life.
    gpu_distrusted_ = true;
  }
}

void InferenceService::charge_per_inference_overheads() {
  // Framework compute equivalent of the real architecture's convolutions.
  const double extra_flops = options_.extra_gflops_per_inference * 1e9;
  if (enclave_) {
    // Framework code executes every inference: its hot pages compete with
    // the model for EPC residency. Full TF dispatches far more code per run
    // (op dispatch, allocator, protobuf), so the whole image stays hot.
    enclave_->touch_binary(options_.full_tensorflow
                               ? 1.0
                               : options_.hot_binary_fraction);
    if (heap_region_ != 0) {
      for (unsigned pass = 0; pass < options_.heap_passes_per_inference;
           ++pass) {
        enclave_->access(heap_region_, 0, options_.framework_heap_bytes,
                         true);
      }
    }
    if (extra_flops > 0) enclave_->compute(extra_flops);
    for (std::uint64_t i = 0; i < options_.syscalls_per_inference; ++i) {
      enclave_->syscall(256, /*asynchronous=*/!options_.sync_syscalls);
    }
  } else if (native_env_ != nullptr && extra_flops > 0) {
    native_env_->compute(extra_flops);
  }
}

ml::Tensor InferenceService::classify(const ml::Tensor& input) {
  tee::SimStopwatch watch(platform_.clock());
  ml::Tensor probs;
  {
    // The profile observes the same clock over the same interval as the
    // span, so its category decomposition sums exactly to the span's
    // duration (the conservation invariant).
    obs::ScopedAttribution profile(platform_.clock(),
                                   obs::names::kSpanInferenceRequest);
    obs::ScopedSpan span(obs::SpanTracer::global(), platform_.clock(),
                         inference_obs().request_span);
    charge_per_inference_overheads();
    auto execute = [&]() {
      return interpreter_ ? interpreter_->invoke(input)
                          : session_->run1("probs", {{"input", input}});
    };
    try {
      probs = execute();
    } catch (const ml::VerificationError&) {
      // The GPU returned a wrong result: discard it, count the strike, and
      // recompute this request entirely in-enclave — the request still
      // terminates, it just loses the offload speedup.
      note_gpu_failure();
      set_offload_active(false);
      probs = execute();
      set_offload_active(!gpu_distrusted_);
    }
  }
  last_latency_ms_ = watch.elapsed_ms();
  inference_obs().requests.add();
  inference_obs().request_ns.observe(watch.elapsed_ns());
  inference_obs().request_quantile_ns.observe(watch.elapsed_ns());
  return probs;
}

std::vector<ml::Tensor> InferenceService::classify_batch(
    const std::vector<const ml::Tensor*>& inputs) {
  if (inputs.empty()) return {};
  if (inputs.size() == 1) {
    std::vector<ml::Tensor> out;
    out.push_back(classify(*inputs.front()));
    return out;
  }
  if (!interpreter_) {
    throw std::logic_error(
        "classify_batch: only the Lite path supports batched invocation");
  }
  tee::SimStopwatch watch(platform_.clock());
  std::vector<ml::Tensor> probs;
  {
    obs::ScopedAttribution profile(platform_.clock(),
                                   obs::names::kSpanInferenceBatch);
    obs::ScopedSpan span(obs::SpanTracer::global(), platform_.clock(),
                         batch_obs().batch_span);
    // One container invocation for the whole batch: framework overheads
    // (binary touch, syscalls, extra flops) are paid once, and the batched
    // interpreter pays per-layer weight paging once — the amortization that
    // makes batching beat per-request dispatch at saturation.
    charge_per_inference_overheads();
    try {
      probs = interpreter_->invoke_batch(inputs);
    } catch (const ml::VerificationError&) {
      // One strike for the whole batch: the stacked result failed its
      // batched verification, so the entire batch re-executes in-enclave.
      note_gpu_failure();
      set_offload_active(false);
      probs = interpreter_->invoke_batch(inputs);
      set_offload_active(!gpu_distrusted_);
    }
  }
  last_latency_ms_ = watch.elapsed_ms();
  batch_obs().batches.add();
  inference_obs().requests.add(inputs.size());
  return probs;
}

std::int64_t InferenceService::classify_label(const ml::Tensor& input) {
  const ml::Tensor probs = classify(input);
  std::int64_t best = 0;
  for (std::int64_t j = 1; j < probs.size(); ++j) {
    if (probs.at(j) > probs.at(best)) best = j;
  }
  return best;
}

}  // namespace stf::core
