// Multi-threaded serving node: the scale-up/scale-out machinery of Figure 7
// as a reusable component.
//
// One ServingNode = one machine running a classification container with N
// worker threads sharing the EPC. Each thread has its own interpreter
// scratch; the node models hyperthread sharing beyond the physical core
// count and the fault-reclaim contention of concurrent EPC misses. A
// ServingFleet partitions a request stream across nodes (scale-out).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/inference.h"
#include "core/loadgen.h"
#include "ml/lite/flat_model.h"
#include "runtime/resilient_channel.h"
#include "runtime/thread_pool.h"
#include "tee/platform.h"

namespace stf::faults {
class FaultPlane;
}  // namespace stf::faults

namespace stf::core {

/// Dynamic cross-request batching policy (docs/SERVING.md). A batch
/// launches when it reaches `max_batch` requests or when `max_wait_s` has
/// elapsed since the queue head arrived, whichever comes first — the
/// classic batch-window tradeoff between amortization and queueing delay.
struct BatchWindowConfig {
  /// Requests per batched container invocation; 1 disables batching.
  std::int64_t max_batch = 8;
  /// Longest the queue head waits for the batch to fill, virtual seconds.
  double max_wait_s = 0.002;
  /// Admission bound on queued requests; arrivals beyond it are shed
  /// immediately (ShedQueueFull). <= 0 means unbounded.
  std::int64_t queue_capacity = 64;
  /// Drop requests whose deadline already passed at dispatch time instead
  /// of wasting a batch slot on a guaranteed SLO miss.
  bool shed_expired = true;
};

enum class RequestStatus {
  Completed,
  /// Shed at admission: the queue was at capacity when the request arrived.
  ShedQueueFull,
  /// Shed at dispatch: the deadline had already passed.
  ShedExpired,
  /// Terminal loss: its node crashed mid-trace and the retry budget (if
  /// any) was exhausted before another node could complete it.
  FailedNodeDown,
  /// Completed, but only after at least one client-side retry (a re-steer
  /// without a retry stays Completed — see steered_from).
  Retried,
};

/// Per-request result of a serve_trace run (virtual timestamps).
struct RequestOutcome {
  std::int64_t id = 0;
  RequestStatus status = RequestStatus::Completed;
  std::uint64_t arrival_ns = 0;
  std::uint64_t dispatch_ns = 0;     ///< batch launch time (0 when shed)
  std::uint64_t completion_ns = 0;   ///< batch completion time (0 when shed)
  std::int64_t batch_size = 0;       ///< size of the batch it rode in
  bool slo_miss = false;             ///< completed after its deadline
  std::int64_t retries = 0;          ///< client-side retry attempts consumed
  std::int64_t steered_from = -1;    ///< node it was re-steered away from
  std::int64_t node = -1;            ///< node that produced the outcome
};

/// Causal linkage for one batch dispatch (docs/TRACING.md). Only built when
/// obs::tracing_enabled(): `trace_id`/`parent_span_id` name the head
/// member's trace and service span (interior spans recorded during the
/// batch nest under them), and `member_trace_ids` carries every member so
/// serve_batch can terminate each request's flow arrow at the dispatch.
struct BatchTraceInfo {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  std::vector<std::uint64_t> member_trace_ids;
};

/// Aggregate view of a serve_trace run.
struct TrafficSummary {
  std::int64_t offered = 0;
  std::int64_t completed = 0;
  std::int64_t shed_queue_full = 0;
  std::int64_t shed_expired = 0;
  std::int64_t slo_misses = 0;
  std::int64_t failed_node_down = 0;  ///< terminal losses to crashed nodes
  std::int64_t retried = 0;           ///< completed after >= 1 retry
  std::int64_t retries_total = 0;     ///< sum of retry attempts consumed
  std::uint64_t first_arrival_ns = 0;
  std::uint64_t last_completion_ns = 0;
  /// Exact nearest-rank quantiles of completed requests' e2e latency
  /// (completion - arrival), same rule as obs::QuantileSeries.
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;
  /// Filled by the caller from evaluate_slo (core/slo.h) when an SLO policy
  /// was evaluated over the run's timeline; 0 otherwise.
  std::int64_t slo_alerts = 0;
  std::int64_t slo_breached_windows = 0;

  /// Requests that reached a completion, with or without retries.
  [[nodiscard]] std::int64_t goodput() const { return completed + retried; }
  [[nodiscard]] double duration_s() const {
    // An all-shed trace never completes anything (last_completion_ns == 0),
    // so the unsigned difference would wrap; report an empty interval.
    if (last_completion_ns <= first_arrival_ns) return 0;
    return static_cast<double>(last_completion_ns - first_arrival_ns) / 1e9;
  }
  [[nodiscard]] double throughput_rps() const {
    const double d = duration_s();
    return d > 0 ? static_cast<double>(goodput()) / d : 0;
  }
};

[[nodiscard]] TrafficSummary summarize(
    const std::vector<RequestOutcome>& outcomes);

/// Deterministic integer-only JSON for one TrafficSummary (throughput is
/// reported as integer milli-rps so the export stays byte-reproducible).
/// Embedded by the serving benches next to their sweep rows.
[[nodiscard]] std::string export_traffic_summary_json(const TrafficSummary& s);

struct ServingConfig {
  tee::TeeMode mode = tee::TeeMode::Hardware;
  tee::CostModel model;
  unsigned threads = 4;
  /// Physical cores on the machine; threads beyond this run as hyperthreads.
  unsigned physical_cores = 4;
  /// Per-thread throughput share when hyperthreading (paper's desktop: 4C8T).
  double hyperthread_efficiency = 0.65;
  /// Reclaim-contention amplification of EPC fault costs when oversubscribed.
  double oversubscribed_fault_factor = 1.5;
  /// Per-thread interpreter state (activation arenas, input staging).
  std::uint64_t per_thread_scratch = 10ull << 20;
  /// Host threads the real ML kernels run on: 0 uses the process-wide pool
  /// (hardware concurrency), 1 runs serial, N gives the node its own pool.
  /// Affects wall time only — the virtual `threads` lanes above model the
  /// simulated machine and are entirely separate.
  unsigned kernel_threads = 0;
  InferenceOptions inference;
};

class ServingNode {
 public:
  /// `model` must outlive the node. `ordinal` is the node's stable index in
  /// its fleet, used as the pid of spans/profiles recorded on its lanes
  /// (deterministic across identical runs, unlike anything address-based).
  ServingNode(const ml::lite::FlatModel& model, ServingConfig config,
              unsigned ordinal = 0);

  /// Classifies `count` copies of `image`, dispatching each to the
  /// least-loaded thread lane; returns the virtual seconds until the last
  /// lane finishes.
  double classify_stream(const ml::Tensor& image, std::int64_t count);

  /// Serves an open-loop request trace (sorted by arrival) with dynamic
  /// cross-request batching and SLO-aware shedding per `window`. Each batch
  /// runs on the least-loaded lane as ONE batched container invocation.
  /// Deterministic in virtual time; returns one outcome per request, in
  /// request order.
  std::vector<RequestOutcome> serve_trace(const std::vector<Request>& requests,
                                          const BatchWindowConfig& window);

  /// Steady-state estimate for long streams: warms the EPC, measures a few
  /// steady rounds for real, and extrapolates (exact for the deterministic
  /// cost model up to reclaim jitter, which the averaging absorbs).
  double estimate_stream_seconds(const ml::Tensor& image, std::int64_t count,
                                 int warmup_rounds = 3,
                                 int measured_rounds = 5);

  /// Runs one batch on the least-loaded lane as a single batched container
  /// invocation launching at `dispatch_ns` (the lane clock is advanced to
  /// it first); returns the batch completion time. Building block of the
  /// fleet failover loop, which owns queueing and shedding itself. `trace`,
  /// when non-null with a nonzero trace_id, installs the head member's
  /// trace context for the batch and finishes every member's flow arrow at
  /// the dispatch (docs/TRACING.md).
  std::uint64_t serve_batch(const std::vector<const ml::Tensor*>& inputs,
                            std::uint64_t dispatch_ns,
                            const BatchTraceInfo* trace = nullptr);

  /// Clock of the least-loaded lane: the earliest time a new batch could
  /// start computing on this node.
  [[nodiscard]] std::uint64_t next_free_ns() const;

  [[nodiscard]] const tee::Platform& platform() const { return *platform_; }
  [[nodiscard]] std::uint64_t epc_faults() const {
    return platform_->epc().stats().faults;
  }

  // --- GPU offload (docs/GPU_OFFLOAD.md) --------------------------------
  /// True once the node's service crossed its verification-failure
  /// threshold and fell back to in-enclave execution for good.
  [[nodiscard]] bool gpu_distrusted() const {
    return service_->gpu_distrusted();
  }
  /// Verification failures (each one re-ran its batch in-enclave).
  [[nodiscard]] std::uint64_t gpu_fallbacks() const {
    return service_->gpu_fallbacks();
  }
  /// Corruption hook forwarded to the service's offload engine; no-op when
  /// the node serves without gpu_offload.
  void set_gpu_corruption(ml::GpuOffloadEngine::CorruptionHook hook) {
    service_->set_gpu_corruption(std::move(hook));
  }

 private:
  void classify_on_lane(unsigned lane, const ml::Tensor& image);
  /// Lane whose clock is furthest behind (ties to the lowest index), so
  /// dispatch keeps lane finish times balanced when per-request costs
  /// diverge (reclaim jitter, mixed batch sizes).
  [[nodiscard]] unsigned least_loaded_lane() const;

  ServingConfig config_;
  unsigned ordinal_ = 0;
  std::unique_ptr<runtime::ThreadPool> kernel_pool_;  // when kernel_threads > 1
  std::unique_ptr<tee::Platform> platform_;
  std::unique_ptr<InferenceService> service_;
  std::vector<tee::RegionId> scratch_;
  std::vector<tee::SimClock> lanes_;
};

/// Circuit-breaker resilience knobs for a fleet facing node failures and
/// lossy request links. All timings are virtual; with a fixed config the
/// degradation path is bit-reproducible.
struct FleetResilienceConfig {
  /// Consecutive dispatch failures before a node's circuit opens.
  unsigned failure_threshold = 3;
  /// Circuit-open time before a half-open probe re-admits the node.
  double cooldown_seconds = 4.0;
  /// Dispatcher-side cost of detecting one failed dispatch (timeout).
  double detect_timeout_seconds = 0.010;
  /// Per-request loss probability on the client->node links; lost requests
  /// are retransmitted (expected-cost model, deterministic).
  double request_drop_prob = 0;
  /// Wait before a lost request is retransmitted.
  double rpc_timeout_seconds = 0.005;
  /// Images handed to one node per dispatch round (re-steering quantum).
  std::int64_t dispatch_batch = 32;
};

/// Client-side retry policy for requests lost to a mid-trace node crash
/// (docs/SERVING.md). Re-uses the ResilientChannel backoff shape: attempt k
/// waits `backoff.timeout_for(k)` plus a seeded jitter draw before re-
/// queueing on another node. Off unless configure_retry() is called.
struct RequestRetryPolicy {
  /// Retry attempts per request beyond the first dispatch. A request's own
  /// retry_budget (loadgen) overrides this when >= 0.
  unsigned max_retries = 3;
  /// Exponential backoff shape (base timeout, factor, cap). The jitter knob
  /// inside is ignored; the fleet draws jitter from its own seeded stream
  /// so reruns stay bit-identical.
  runtime::RetryPolicy backoff{};
  /// Seed of the fleet's jitter DRBG (virtual-time jitter, deterministic).
  std::uint64_t jitter_seed = 1;
};

/// Optional request hedging (docs/SERVING.md): when the queue head has
/// waited `hedge_delay_s` without dispatching, a duplicate is enqueued on a
/// second node; the first completion wins and the loser is cancelled.
struct HedgePolicy {
  bool enabled = false;
  double hedge_delay_s = 0.005;
};

/// Health the fleet tracks per node (all counters deterministic).
struct FleetNodeStatus {
  bool alive = true;                    ///< physical state (fail/restore_node)
  unsigned consecutive_failures = 0;    ///< resets on any success
  std::uint64_t ejected_until_ns = 0;   ///< circuit open until this time
  bool probation = false;               ///< next failure re-ejects immediately
  std::uint64_t ejections = 0;
  std::uint64_t failures_total = 0;
  std::int64_t served = 0;
  /// GPU offload health (docs/GPU_OFFLOAD.md): verification failures this
  /// node's service absorbed, and whether it stopped trusting its GPU.
  std::uint64_t gpu_fallbacks = 0;
  bool gpu_distrusted = false;
};

/// Scale-out: a fleet of identical serving nodes splitting one stream.
/// With resilience configured (or any node failed) the fleet tracks health:
/// failing nodes accumulate failure counts, get ejected circuit-breaker
/// style, are probed again after a cool-down, and their load is re-steered
/// so the stream always completes — reduced throughput, never a hang.
class ServingFleet {
 public:
  ServingFleet(const ml::lite::FlatModel& model, ServingConfig config,
               unsigned nodes);

  /// Virtual seconds to serve `count` images split across the healthy
  /// nodes, including shipping each request through the network shield.
  /// With every node down, throws runtime::TransientError instead of
  /// spinning. Without faults/resilience this is the exact legacy estimate.
  double estimate_stream_seconds(const ml::Tensor& image, std::int64_t count);

  /// Serves an open-loop trace across the live nodes: requests are
  /// partitioned round-robin by id, each arrival is delayed by its network
  /// shield + LAN shipping cost before reaching its node's queue, and every
  /// node batches/sheds per `window` (ServingNode::serve_trace). Outcomes
  /// keep client-side arrival times, so e2e latency includes the wire.
  /// Throws runtime::TransientError when no node is alive.
  std::vector<RequestOutcome> serve_trace(const std::vector<Request>& requests,
                                          const BatchWindowConfig& window);

  /// Enables health tracking with the given knobs (fail_node() implies a
  /// default-configured enable).
  void configure_resilience(FleetResilienceConfig cfg);

  /// Wires a PR-2 fault plane's crash schedule into serve_trace: nodes
  /// crash and revive at the plane's seeded virtual times mid-trace, and
  /// the failover loop (detect -> eject -> re-steer -> half-open re-admit)
  /// takes over. Fleet node `i` maps to plane node id `base_node_id + i`.
  /// When the fleet serves with gpu_offload, the plane's GPU-corruption
  /// windows (schedule_gpu_corruption) are wired into each node's offload
  /// engine too: inside a window the node's GPU returns wrong results,
  /// verification rejects them, and the batch falls back in-enclave
  /// (docs/GPU_OFFLOAD.md). The plane must outlive the fleet.
  void attach_fault_plane(faults::FaultPlane& plane,
                          std::uint32_t base_node_id = 0);

  /// Enables client-side retries for crash-lost requests in serve_trace.
  void configure_retry(RequestRetryPolicy policy);

  /// Enables queue-head hedging in serve_trace.
  void configure_hedging(HedgePolicy policy);

  /// Crash-stops node `index`; dispatches to it fail until restore_node().
  void fail_node(unsigned index);

  /// Brings node `index` back; it re-joins traffic at its next half-open
  /// probe — after the cool-down within a running stream, or immediately at
  /// the start of the next stream (each estimate is its own timeline).
  void restore_node(unsigned index);

  [[nodiscard]] const FleetNodeStatus& node_status(unsigned index) const {
    return status_.at(index);
  }
  [[nodiscard]] unsigned alive_node_count() const;
  [[nodiscard]] unsigned node_count() const {
    return static_cast<unsigned>(nodes_.size());
  }

 private:
  double estimate_resilient(const ml::Tensor& image, std::int64_t count);
  /// True when serve_trace must run the failover event loop instead of the
  /// static-partition fast path (fault plane attached, retry or hedging on).
  [[nodiscard]] bool failover_active() const {
    return fault_plane_ != nullptr || retry_.has_value() ||
           (hedge_.has_value() && hedge_->enabled);
  }
  std::vector<RequestOutcome> serve_trace_failover(
      const std::vector<Request>& requests, const BatchWindowConfig& window);
  /// Copies each node's GPU-offload health into status_ (end of a serve).
  void sync_gpu_status();

  ServingConfig config_;
  std::vector<std::unique_ptr<ServingNode>> nodes_;
  std::vector<FleetNodeStatus> status_;
  std::optional<FleetResilienceConfig> resilience_;
  faults::FaultPlane* fault_plane_ = nullptr;
  std::uint32_t fault_base_id_ = 0;
  std::optional<RequestRetryPolicy> retry_;
  std::optional<HedgePolicy> hedge_;
};

}  // namespace stf::core
