// Multi-threaded serving node: the scale-up/scale-out machinery of Figure 7
// as a reusable component.
//
// One ServingNode = one machine running a classification container with N
// worker threads sharing the EPC. Each thread has its own interpreter
// scratch; the node models hyperthread sharing beyond the physical core
// count and the fault-reclaim contention of concurrent EPC misses. A
// ServingFleet partitions a request stream across nodes (scale-out).
#pragma once

#include <memory>
#include <vector>

#include "core/inference.h"
#include "ml/lite/flat_model.h"
#include "runtime/thread_pool.h"
#include "tee/platform.h"

namespace stf::core {

struct ServingConfig {
  tee::TeeMode mode = tee::TeeMode::Hardware;
  tee::CostModel model;
  unsigned threads = 4;
  /// Physical cores on the machine; threads beyond this run as hyperthreads.
  unsigned physical_cores = 4;
  /// Per-thread throughput share when hyperthreading (paper's desktop: 4C8T).
  double hyperthread_efficiency = 0.65;
  /// Reclaim-contention amplification of EPC fault costs when oversubscribed.
  double oversubscribed_fault_factor = 1.5;
  /// Per-thread interpreter state (activation arenas, input staging).
  std::uint64_t per_thread_scratch = 10ull << 20;
  /// Host threads the real ML kernels run on: 0 uses the process-wide pool
  /// (hardware concurrency), 1 runs serial, N gives the node its own pool.
  /// Affects wall time only — the virtual `threads` lanes above model the
  /// simulated machine and are entirely separate.
  unsigned kernel_threads = 0;
  InferenceOptions inference;
};

class ServingNode {
 public:
  /// `model` must outlive the node.
  ServingNode(const ml::lite::FlatModel& model, ServingConfig config);

  /// Classifies `count` copies of `image`, round-robin across the thread
  /// lanes; returns the virtual seconds until the last lane finishes.
  double classify_stream(const ml::Tensor& image, std::int64_t count);

  /// Steady-state estimate for long streams: warms the EPC, measures a few
  /// steady rounds for real, and extrapolates (exact for the deterministic
  /// cost model up to reclaim jitter, which the averaging absorbs).
  double estimate_stream_seconds(const ml::Tensor& image, std::int64_t count,
                                 int warmup_rounds = 3,
                                 int measured_rounds = 5);

  [[nodiscard]] const tee::Platform& platform() const { return *platform_; }
  [[nodiscard]] std::uint64_t epc_faults() const {
    return platform_->epc().stats().faults;
  }

 private:
  void classify_on_lane(unsigned lane, const ml::Tensor& image);

  ServingConfig config_;
  std::unique_ptr<runtime::ThreadPool> kernel_pool_;  // when kernel_threads > 1
  std::unique_ptr<tee::Platform> platform_;
  std::unique_ptr<InferenceService> service_;
  std::vector<tee::RegionId> scratch_;
  std::vector<tee::SimClock> lanes_;
};

/// Scale-out: a fleet of identical serving nodes splitting one stream.
class ServingFleet {
 public:
  ServingFleet(const ml::lite::FlatModel& model, ServingConfig config,
               unsigned nodes);

  /// Virtual seconds to serve `count` images split evenly across nodes,
  /// including shipping each request through the network shield.
  double estimate_stream_seconds(const ml::Tensor& image, std::int64_t count);

  [[nodiscard]] unsigned node_count() const {
    return static_cast<unsigned>(nodes_.size());
  }

 private:
  ServingConfig config_;
  std::vector<std::unique_ptr<ServingNode>> nodes_;
};

}  // namespace stf::core
