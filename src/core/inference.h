// Secure inference containers: the classification side of secureTF (§3.3.4,
// §4.2).
//
// An InferenceService is one shielded container: an enclave sized like the
// real deployment artifact (TF-Lite: 1.9 MB binary; full TensorFlow:
// 87.4 MB; Graphene: application + library OS), the lowered model, and the
// interpreter. The same service runs in Native / SIM / HW mode — results are
// bit-identical, only the charged virtual time differs, which is exactly the
// comparison Figures 5-7 draw.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/workloads.h"
#include "ml/lite/flat_model.h"
#include "ml/session.h"
#include "tee/platform.h"

namespace stf::core {

struct InferenceOptions {
  std::string container_name = "classifier";
  std::uint64_t binary_bytes = kLiteBinaryBytes;
  /// SCONE runtime multiplier (Native mode ignores it). Graphene-style
  /// containers use a slightly higher value plus synchronous syscalls.
  double runtime_overhead = 1.05;
  /// Memory intensity of the model's kernels (see workloads.h).
  double bytes_per_flop = 0.25;
  /// Convolution compute of the real architecture not performed by the
  /// dense stand-in; charged per inference through the cost model.
  double extra_gflops_per_inference = 0;
  /// Full-TF containers keep every activation and re-touch the whole binary
  /// image per run (interpreter + framework); Lite containers do not.
  bool full_tensorflow = false;
  /// Graphene-style baseline: synchronous (exit-based) system calls and a
  /// costlier page-fault path through the library OS.
  bool sync_syscalls = false;
  /// System calls issued per inference (I/O, futexes, ...); each costs a
  /// transition in sync mode and an async queue hop otherwise.
  std::uint64_t syscalls_per_inference = 180;
  /// Fraction of the binary image whose code/data is hot per inference
  /// (instruction fetch + static tables keep those EPC pages live).
  double hot_binary_fraction = 0.3;
  /// Full-TF only: framework heap (protobuf graph, grappler, Eigen arenas,
  /// Python interpreter state) and how many times an inference sweeps it.
  /// TF-Lite plans memory statically and has none of this.
  std::uint64_t framework_heap_bytes = 0;
  unsigned heap_passes_per_inference = 2;
  /// Thread pool the real ML kernels execute on (wall time only; virtual
  /// time and results are thread-count independent).
  ml::kernels::KernelContext kernels = ml::kernels::KernelContext::shared();
  /// EPC-aware activation planning for the full-TensorFlow path
  /// (docs/MEMORY_PLANNER.md): liveness-packed arena instead of the legacy
  /// bump cursor. Results are bit-identical either way.
  bool memory_planner = false;
  /// Layer-wise weight streaming: overlap next-layer weight fault-in with
  /// current-layer compute and retire dead weights early. Applies to both
  /// paths (full TF requires `memory_planner` too).
  bool weight_streaming = false;
  /// True int8 execution (docs/QUANTIZATION.md): quantized GEMM/conv on
  /// int8 codes with fused requantization instead of dequantizing weights
  /// to float. Requires a calibrated int8 FlatModel
  /// (FlatModel::quantized(calibration)); Lite path only — the full-TF
  /// constructor throws std::invalid_argument when set.
  bool int8_compute = false;
  /// Slalom GPU offload (docs/GPU_OFFLOAD.md): linear layers run on the
  /// simulated untrusted GPU (charged under profile.gpu / profile.pcie)
  /// with batched in-enclave verification per `slalom`. Works on both
  /// paths; mutually exclusive with int8_compute (float-only). A failed
  /// verification falls the request back to in-enclave execution, and
  /// after `slalom.distrust_after` failures the service distrusts the GPU
  /// and stops offloading (gpu_distrusted()). Outputs are bit-identical
  /// with offload on, off, or fallen back.
  bool gpu_offload = false;
  ml::SlalomConfig slalom;
};

class InferenceService {
 public:
  /// Lite-path service (the production configuration).
  InferenceService(tee::Platform& platform, ml::lite::FlatModel model,
                   InferenceOptions options);
  /// Full-TensorFlow path (used by the §5.3 #4 comparison): executes the
  /// frozen graph with the Session executor.
  InferenceService(tee::Platform& platform, ml::Graph frozen_graph,
                   InferenceOptions options);
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Classifies one input; returns class probabilities.
  ml::Tensor classify(const ml::Tensor& input);

  /// Classifies a batch of same-shaped inputs in ONE container invocation:
  /// per-inference framework overheads (binary touch, syscalls, extra
  /// convolution flops) and per-layer weight paging are charged once for
  /// the whole batch, which is where cross-request batching wins its
  /// throughput (docs/SERVING.md). Outputs are bit-identical to calling
  /// classify() per input. Lite path only; the full-TensorFlow session
  /// path throws std::logic_error.
  std::vector<ml::Tensor> classify_batch(
      const std::vector<const ml::Tensor*>& inputs);

  /// Argmax convenience.
  std::int64_t classify_label(const ml::Tensor& input);

  /// Virtual-time latency of the most recent classify() call.
  [[nodiscard]] double last_latency_ms() const { return last_latency_ms_; }

  [[nodiscard]] const tee::Enclave* enclave() const { return enclave_.get(); }
  [[nodiscard]] tee::Platform& platform() { return platform_; }

  // --- GPU offload state (docs/GPU_OFFLOAD.md) --------------------------
  /// Verification failures seen so far; each one re-executed its request
  /// batch in-enclave.
  [[nodiscard]] std::uint64_t gpu_fallbacks() const { return gpu_fallbacks_; }
  /// True once failures reached slalom.distrust_after: offload is off for
  /// the service's remaining lifetime and everything runs in-enclave.
  [[nodiscard]] bool gpu_distrusted() const { return gpu_distrusted_; }
  /// Fault-injection hook forwarded to the offload engine (chaos plumbing);
  /// null clears. No-op when gpu_offload is off.
  void set_gpu_corruption(ml::GpuOffloadEngine::CorruptionHook hook);
  /// Offload counters, or nullptr when gpu_offload is off.
  [[nodiscard]] const ml::SlalomStats* slalom_stats() const;

 private:
  void charge_per_inference_overheads();
  /// Sets the offload switch on whichever execution path is active.
  void set_offload_active(bool on);
  /// Counts a failed verification; trips gpu_distrusted_ at the threshold.
  void note_gpu_failure();

  tee::Platform& platform_;
  InferenceOptions options_;
  std::unique_ptr<tee::Enclave> enclave_;
  std::unique_ptr<tee::EnclaveEnv> enclave_env_;
  std::unique_ptr<tee::NativeEnv> native_env_;
  // Exactly one of the two execution paths is active.
  std::optional<ml::lite::FlatModel> model_;
  std::unique_ptr<ml::lite::LiteInterpreter> interpreter_;
  std::optional<ml::Graph> graph_;
  std::unique_ptr<ml::Session> session_;
  tee::RegionId heap_region_ = 0;
  double last_latency_ms_ = 0;
  std::uint64_t gpu_fallbacks_ = 0;
  bool gpu_distrusted_ = false;
};

}  // namespace stf::core
