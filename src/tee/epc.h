// Enclave Page Cache (EPC) simulator.
//
// SGXv1 exposes ~94 MB of protected memory; when an enclave's working set
// exceeds it, the kernel evicts pages (EWB: encrypt + version-tree update)
// and reloads them on demand (ELDU: decrypt + integrity check). That paging
// traffic is the single biggest performance effect in the paper: it is why
// TF-Lite beats full TF by 71x inside enclaves, why HW mode stops scaling at
// 8 cores, and why secureTF beats Graphene once models outgrow the EPC.
//
// This manager tracks page residency per region with a randomized-victim
// reclaim policy (modeling the kernel's imprecise accessed-bit scanning) and
// charges the calibrated per-page costs into a SimClock. The MEE itself is
// hardware, invisible to software, so its work is *modeled* (cost-only);
// software-visible crypto (the shields) is implemented for real elsewhere.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "tee/cost_model.h"
#include "tee/sim_clock.h"

namespace stf::tee {

using RegionId = std::uint64_t;

struct EpcStats {
  std::uint64_t faults = 0;       ///< page accesses that found the page absent
  std::uint64_t loads = 0;        ///< pages brought into EPC (ELDU)
  std::uint64_t evictions = 0;    ///< pages pushed out of EPC (EWB, on demand)
  std::uint64_t accesses = 0;     ///< access() calls
  std::uint64_t bytes_accessed = 0;
  std::uint64_t resident_pages = 0;
  std::uint64_t prefetches = 0;        ///< prefetch() calls
  std::uint64_t prefetched_pages = 0;  ///< pages loaded ahead of use
  std::uint64_t advised_evictions = 0; ///< pages evicted off the critical path
};

class EpcManager {
 public:
  /// `limited` is false in Simulation mode: the runtime is active but there
  /// is no EPC boundary, so pages never fault (paper's SIM semantics).
  EpcManager(const CostModel& model, bool limited);

  /// Registers a memory region of `bytes` (rounded up to whole pages).
  /// Pages start non-resident; first touch faults them in.
  RegionId map_region(std::string label, std::uint64_t bytes);

  /// Releases a region; its resident pages leave the EPC for free (EREMOVE).
  void unmap_region(RegionId id);

  /// Simulates enclave accesses to [offset, offset+len) of a region and
  /// charges fault/load/eviction costs to `clock`. `write` marks dirtiness
  /// (dirty evictions are the common case; clean pages still pay EWB in SGX,
  /// so the model charges evictions uniformly).
  void access(RegionId id, std::uint64_t offset, std::uint64_t len, bool write,
              SimClock& clock);

  /// Touches an entire region (e.g. initial load of a model file).
  void access_all(RegionId id, bool write, SimClock& clock);

  // --- EPC-aware streaming (docs/MEMORY_PLANNER.md) ----------------------

  /// Faults the pages of [offset, offset+len) in *ahead of use*: the ELDU
  /// work overlaps enclave compute via the async-syscall-queue analog, so
  /// each page charges the cheap `page_prefetch_ns` instead of the demand
  /// fault + load pair. Already-resident pages are free. Demand evictions
  /// still occur (and are counted) when the EPC is full. No-op when the
  /// EPC is unlimited (SIM mode).
  void prefetch(RegionId id, std::uint64_t offset, std::uint64_t len,
                SimClock& clock);

  /// Proactively evicts the resident pages of [offset, offset+len), paying
  /// only the async enqueue cost per page (the EWB runs off the critical
  /// path). Counted as `advised_evictions`, *not* as demand `evictions`.
  /// Pinned regions and unlimited EPCs are no-ops.
  void advise_evict(RegionId id, std::uint64_t offset, std::uint64_t len,
                    SimClock& clock);

  /// Exempts a region's pages from victim selection (both demand eviction
  /// and advise_evict). Throws std::logic_error if an access later finds
  /// the EPC full with nothing evictable.
  void pin(RegionId id);
  void unpin(RegionId id);

  /// Per-instance view of this manager's activity. The same events also
  /// feed the process-wide obs::Registry (tee.epc.* series, aggregated
  /// across all managers); see docs/METRICS.md.
  [[nodiscard]] const EpcStats& stats() const { return stats_; }

  /// Starts a new measurement epoch for the *flow* fields (faults, loads,
  /// evictions, accesses, bytes_accessed → zero) while re-seeding the one
  /// *level* field (resident_pages) from live residency — pages do not
  /// leave the EPC because an observer reset a window. Mirrors
  /// obs::Registry::reset() semantics: counters zero, gauges persist.
  /// (The global tee.epc.* registry series are intentionally untouched:
  /// per-instance windows and the process-wide plane reset independently.)
  void reset_stats() {
    stats_ = EpcStats{};
    stats_.resident_pages = resident_count_;
  }

  [[nodiscard]] std::uint64_t capacity_pages() const { return capacity_pages_; }
  [[nodiscard]] std::uint64_t resident_pages() const { return resident_count_; }
  [[nodiscard]] std::uint64_t mapped_bytes() const { return mapped_bytes_; }
  [[nodiscard]] bool limited() const { return limited_; }

 private:
  struct Page {
    bool resident = false;
    std::uint32_t resident_pos = 0;  // index into resident_list_
  };
  struct Region {
    std::string label;
    std::uint64_t bytes = 0;
    std::vector<Page> pages;
    std::uint64_t resident = 0;  // fast path: fully-resident regions skip scan
    bool pinned = false;         // exempt from victim selection
  };

  Region& find_region(RegionId id);
  void fault_in(Region& region, RegionId id, std::uint32_t page_index,
                SimClock& clock);
  void evict_one(SimClock& clock);
  void drop_resident(Region& region, std::uint32_t page_index);
  std::uint64_t next_random();

  const CostModel& model_;
  bool limited_;
  std::uint64_t capacity_pages_;
  std::uint64_t resident_count_ = 0;
  std::uint64_t mapped_bytes_ = 0;
  RegionId next_id_ = 1;
  std::unordered_map<RegionId, Region> regions_;
  // access()/prefetch() fast path: the executor touches the same region many
  // times in a row (weights, then the arena), so one cached (id, Region*)
  // pair removes the hash lookup from the hot path. Node pointers are stable
  // across rehash; the cache is dropped when its region is unmapped.
  RegionId cached_id_ = 0;
  Region* cached_region_ = nullptr;
  std::uint64_t pinned_resident_ = 0;  // resident pages in pinned regions
  // Resident pages in arbitrary order for O(1) random victim selection.
  // Real EPC reclaim scans accessed bits imprecisely; a randomized victim
  // models that and avoids the pathological 100%-miss cliff strict LRU shows
  // on cyclic scans marginally larger than the EPC.
  std::vector<std::pair<RegionId, std::uint32_t>> resident_list_;
  std::uint64_t rng_state_ = 0x9E3779B97F4A7C15ull;
  EpcStats stats_;

  // Global-plane handles, resolved once in the ctor (registry references
  // stay valid forever). Gauges carry level deltas so concurrent managers
  // aggregate instead of clobbering each other.
  obs::Counter& obs_faults_;
  obs::Counter& obs_loads_;
  obs::Counter& obs_evictions_;
  obs::Counter& obs_accesses_;
  obs::Counter& obs_bytes_accessed_;
  obs::Counter& obs_prefetches_;
  obs::Counter& obs_prefetched_pages_;
  obs::Counter& obs_advised_evictions_;
  obs::Gauge& obs_resident_pages_;
  obs::Gauge& obs_mapped_bytes_;
  std::uint32_t span_evict_id_;
  std::uint32_t span_load_id_;
  std::uint32_t span_prefetch_id_;
};

}  // namespace stf::tee
