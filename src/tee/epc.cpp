#include "tee/epc.h"

#include <stdexcept>

#include "obs/names.h"
#include "obs/profile.h"
#include "obs/timeline.h"

namespace stf::tee {

EpcManager::EpcManager(const CostModel& model, bool limited)
    : model_(model),
      limited_(limited),
      capacity_pages_(model.epc_pages()),
      obs_faults_(obs::Registry::global().counter(
          obs::names::kEpcFaults, "EPC page faults (absent on access)")),
      obs_loads_(obs::Registry::global().counter(
          obs::names::kEpcLoads, "pages brought into EPC (ELDU)")),
      obs_evictions_(obs::Registry::global().counter(
          obs::names::kEpcEvictions, "pages pushed out of EPC (EWB)")),
      obs_accesses_(obs::Registry::global().counter(obs::names::kEpcAccesses,
                                                    "EPC access() calls")),
      obs_bytes_accessed_(obs::Registry::global().counter(
          obs::names::kEpcBytesAccessed, "bytes crossing the EPC boundary",
          obs::Unit::Bytes)),
      obs_prefetches_(obs::Registry::global().counter(
          obs::names::kEpcPrefetches, "prefetch batches that loaded pages")),
      obs_prefetched_pages_(obs::Registry::global().counter(
          obs::names::kEpcPrefetchedPages, "pages loaded ahead of use",
          obs::Unit::Pages)),
      obs_advised_evictions_(obs::Registry::global().counter(
          obs::names::kEpcAdvisedEvictions,
          "pages evicted off the critical path", obs::Unit::Pages)),
      obs_resident_pages_(obs::Registry::global().gauge(
          obs::names::kEpcResidentPages, "live resident EPC pages",
          obs::Unit::Pages)),
      obs_mapped_bytes_(obs::Registry::global().gauge(
          obs::names::kEpcMappedBytes, "bytes of mapped enclave regions",
          obs::Unit::Bytes)),
      span_evict_id_(obs::SpanTracer::global().intern(obs::names::kSpanEpcEvict)),
      span_load_id_(obs::SpanTracer::global().intern(obs::names::kSpanEpcLoad)),
      span_prefetch_id_(
          obs::SpanTracer::global().intern(obs::names::kSpanEpcPrefetch)) {
  if (capacity_pages_ == 0) {
    throw std::invalid_argument("EpcManager: EPC must hold at least one page");
  }
}

std::uint64_t EpcManager::next_random() {
  // xorshift64: deterministic victim sampling, independent of any global RNG.
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  return rng_state_;
}

RegionId EpcManager::map_region(std::string label, std::uint64_t bytes) {
  const std::uint64_t page_count =
      (bytes + model_.page_size - 1) / model_.page_size;
  Region region;
  region.label = std::move(label);
  region.bytes = bytes;
  region.pages.resize(page_count);
  mapped_bytes_ += bytes;
  obs_mapped_bytes_.add(static_cast<std::int64_t>(bytes));
  const RegionId id = next_id_++;
  regions_.emplace(id, std::move(region));
  return id;
}

EpcManager::Region& EpcManager::find_region(RegionId id) {
  if (id == cached_id_ && cached_region_ != nullptr) return *cached_region_;
  auto it = regions_.find(id);
  if (it == regions_.end()) {
    throw std::invalid_argument("EpcManager: access to unmapped region");
  }
  // unordered_map node pointers are stable until erase, so the cache stays
  // valid across map_region() rehashes; unmap_region() drops it.
  cached_id_ = id;
  cached_region_ = &it->second;
  return it->second;
}

void EpcManager::unmap_region(RegionId id) {
  auto it = regions_.find(id);
  if (it == regions_.end()) return;
  if (id == cached_id_) {
    cached_id_ = 0;
    cached_region_ = nullptr;
  }
  const std::uint64_t resident_before = resident_count_;
  for (std::uint32_t p = 0; p < it->second.pages.size(); ++p) {
    Page& page = it->second.pages[p];
    if (!page.resident) continue;
    // Swap-remove from the resident list, fixing the moved page's position.
    const std::uint32_t pos = page.resident_pos;
    resident_list_[pos] = resident_list_.back();
    resident_list_.pop_back();
    if (pos < resident_list_.size()) {
      const auto [moved_region, moved_page] = resident_list_[pos];
      regions_.at(moved_region).pages[moved_page].resident_pos = pos;
    }
    --resident_count_;
    if (it->second.pinned) --pinned_resident_;
    page.resident = false;
  }
  stats_.resident_pages = resident_count_;
  obs_resident_pages_.sub(
      static_cast<std::int64_t>(resident_before - resident_count_));
  mapped_bytes_ -= it->second.bytes;
  obs_mapped_bytes_.sub(static_cast<std::int64_t>(it->second.bytes));
  regions_.erase(it);
}

void EpcManager::drop_resident(Region& region, std::uint32_t page_index) {
  Page& page = region.pages[page_index];
  const std::uint32_t pos = page.resident_pos;
  page.resident = false;
  --region.resident;

  resident_list_[pos] = resident_list_.back();
  resident_list_.pop_back();
  if (pos < resident_list_.size()) {
    const auto [moved_region, moved_page] = resident_list_[pos];
    regions_.at(moved_region).pages[moved_page].resident_pos = pos;
  }

  --resident_count_;
  if (region.pinned) --pinned_resident_;
  obs_resident_pages_.sub(1);
}

void EpcManager::evict_one(SimClock& clock) {
  if (resident_list_.size() <= pinned_resident_) {
    throw std::logic_error("EpcManager: EPC full with no evictable page");
  }
  // Random victim, probing forward past pinned pages (the kernel's reclaim
  // scan skips EPCM-locked entries the same way).
  std::uint32_t pos = static_cast<std::uint32_t>(
      next_random() % resident_list_.size());
  while (regions_.at(resident_list_[pos].first).pinned) {
    pos = static_cast<std::uint32_t>((pos + 1) % resident_list_.size());
  }
  const auto [victim_region, victim_page] = resident_list_[pos];
  drop_resident(regions_.at(victim_region), victim_page);

  ++stats_.evictions;
  obs_evictions_.add();
  const std::uint64_t start = clock.now_ns();
  clock.advance(model_.page_evict_ns);
  obs::SpanTracer::global().record(span_evict_id_, start, clock.now_ns());
  obs::Timeline::global().record_epc_eviction(start, 1);
}

void EpcManager::fault_in(Region& region, RegionId id, std::uint32_t page_index,
                          SimClock& clock) {
  ++stats_.faults;
  obs_faults_.add();
  clock.advance(model_.page_fault_ns);
  while (resident_count_ >= capacity_pages_) evict_one(clock);
  Page& page = region.pages[page_index];
  page.resident = true;
  page.resident_pos = static_cast<std::uint32_t>(resident_list_.size());
  resident_list_.emplace_back(id, page_index);
  ++region.resident;
  ++resident_count_;
  if (region.pinned) ++pinned_resident_;
  ++stats_.loads;
  obs_loads_.add();
  obs_resident_pages_.add(1);
  clock.advance(model_.page_load_ns);
  // The load span is recorded by the caller, coalesced over the whole
  // access()/prefetch() batch — one ring record per call, not per page.
}

void EpcManager::access(RegionId id, std::uint64_t offset, std::uint64_t len,
                        bool write, SimClock& clock) {
  (void)write;  // SGX pays EWB for clean and dirty pages alike
  Region& region = find_region(id);
  if (len == 0) return;
  if (offset + len > region.pages.size() * model_.page_size) {
    throw std::out_of_range("EpcManager: access beyond region");
  }

  ++stats_.accesses;
  stats_.bytes_accessed += len;
  obs_accesses_.add();
  obs_bytes_accessed_.add(len);

  if (!limited_) return;  // SIM mode: runtime active, but no EPC boundary

  // Everything the EPC boundary costs — MEE traffic, faults, evictions,
  // loads — is attributed to epc_paging (fault_in/evict_one run inside
  // this scope).
  obs::ScopedCategory attribution(obs::Category::kEpcPaging);

  // Cache lines crossing the EPC boundary pass through the MEE.
  clock.advance(static_cast<std::uint64_t>(
      static_cast<double>(len) * model_.mee_overhead_per_byte_ns));

  // Fast path: a fully-resident region cannot fault.
  if (region.resident == region.pages.size()) {
    stats_.resident_pages = resident_count_;
    return;
  }

  const std::uint32_t first = static_cast<std::uint32_t>(offset / model_.page_size);
  const std::uint32_t last =
      static_cast<std::uint32_t>((offset + len - 1) / model_.page_size);
  const std::uint64_t loads_before = stats_.loads;
  const std::uint64_t span_start = clock.now_ns();
  for (std::uint32_t p = first; p <= last; ++p) {
    if (!region.pages[p].resident) fault_in(region, id, p, clock);
  }
  if (stats_.loads != loads_before) {
    // One coalesced paging span for the whole access (covers every fault,
    // demand eviction, and load this call performed).
    obs::SpanTracer::global().record(span_load_id_, span_start, clock.now_ns());
    obs::Timeline::global().record_epc_load(
        span_start, static_cast<std::int64_t>(stats_.loads - loads_before));
  }
  stats_.resident_pages = resident_count_;
}

void EpcManager::access_all(RegionId id, bool write, SimClock& clock) {
  access(id, 0, find_region(id).bytes, write, clock);
}

void EpcManager::prefetch(RegionId id, std::uint64_t offset, std::uint64_t len,
                          SimClock& clock) {
  if (!limited_ || len == 0) return;
  Region& region = find_region(id);
  if (offset + len > region.pages.size() * model_.page_size) {
    throw std::out_of_range("EpcManager: prefetch beyond region");
  }
  if (region.resident == region.pages.size()) return;  // nothing to load

  obs::ScopedCategory attribution(obs::Category::kEpcPrefetch);
  const std::uint32_t first =
      static_cast<std::uint32_t>(offset / model_.page_size);
  const std::uint32_t last =
      static_cast<std::uint32_t>((offset + len - 1) / model_.page_size);
  const std::uint64_t span_start = clock.now_ns();
  std::uint64_t loaded = 0;
  for (std::uint32_t p = first; p <= last; ++p) {
    if (region.pages[p].resident) continue;
    // Make room first (counts as demand eviction when it happens — the
    // streaming caller is expected to advise_evict cold spans beforehand).
    while (resident_count_ >= capacity_pages_) evict_one(clock);
    Page& page = region.pages[p];
    page.resident = true;
    page.resident_pos = static_cast<std::uint32_t>(resident_list_.size());
    resident_list_.emplace_back(id, p);
    ++region.resident;
    ++resident_count_;
    if (region.pinned) ++pinned_resident_;
    obs_resident_pages_.add(1);
    // Overlapped ELDU: only the enqueue hop + decrypt tail hits the
    // critical path; no AEX, no demand fault.
    clock.advance(model_.page_prefetch_ns);
    ++loaded;
  }
  if (loaded > 0) {
    ++stats_.prefetches;
    stats_.prefetched_pages += loaded;
    obs_prefetches_.add();
    obs_prefetched_pages_.add(loaded);
    obs::SpanTracer::global().record(span_prefetch_id_, span_start,
                                     clock.now_ns());
  }
  stats_.resident_pages = resident_count_;
}

void EpcManager::advise_evict(RegionId id, std::uint64_t offset,
                              std::uint64_t len, SimClock& clock) {
  if (!limited_ || len == 0) return;
  Region& region = find_region(id);
  if (region.pinned || region.resident == 0) return;
  if (offset + len > region.pages.size() * model_.page_size) {
    throw std::out_of_range("EpcManager: advise_evict beyond region");
  }

  obs::ScopedCategory attribution(obs::Category::kEpcPrefetch);
  const std::uint32_t first =
      static_cast<std::uint32_t>(offset / model_.page_size);
  const std::uint32_t last =
      static_cast<std::uint32_t>((offset + len - 1) / model_.page_size);
  for (std::uint32_t p = first; p <= last; ++p) {
    if (!region.pages[p].resident) continue;
    drop_resident(region, p);
    ++stats_.advised_evictions;
    obs_advised_evictions_.add();
    // Async enqueue only: the EWB runs off the critical path.
    clock.advance(model_.page_advise_evict_ns);
  }
  stats_.resident_pages = resident_count_;
}

void EpcManager::pin(RegionId id) {
  Region& region = find_region(id);
  if (region.pinned) return;
  region.pinned = true;
  pinned_resident_ += region.resident;
}

void EpcManager::unpin(RegionId id) {
  Region& region = find_region(id);
  if (!region.pinned) return;
  region.pinned = false;
  pinned_resident_ -= region.resident;
}

}  // namespace stf::tee
