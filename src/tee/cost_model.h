// Calibrated cost model for the SGX simulation.
//
// The constants below encode the performance characteristics that drive every
// result in the paper's evaluation (§5):
//   * enclave transitions are expensive (~8k cycles for EENTER/EEXIT), which
//     is why SCONE's asynchronous syscalls + user-level threading win;
//   * the usable EPC is ~94 MB; once an enclave's working set exceeds it the
//     kernel pages EPC pages in/out through the MEE (encrypt + integrity),
//     which is 2-3 orders of magnitude slower than a normal memory access;
//   * IAS attestation needs WAN round trips, local CAS does not.
//
// Values are derived from published SGXv1 measurements (SCONE paper §4,
// "Intel SGX Explained", Graphene-SGX ATC'17) and tuned so the headline
// ratios of the secureTF paper land where the paper reports them. Absolute
// numbers are *not* claimed to match the authors' testbed.
#pragma once

#include <cstdint>

namespace stf::tee {

/// Execution mode of a platform, matching the paper's evaluation axes.
enum class TeeMode {
  Native,      ///< no TEE, no runtime: plain process (baseline)
  Simulation,  ///< SCONE runtime active, SGX hardware off (paper's "SIM")
  Hardware,    ///< SCONE runtime + SGX costs: EPC limit, MEE, transitions
};

inline const char* to_string(TeeMode m) {
  switch (m) {
    case TeeMode::Native: return "native";
    case TeeMode::Simulation: return "sim";
    case TeeMode::Hardware: return "hw";
  }
  return "?";
}

struct CostModel {
  // --- CPU / memory ---------------------------------------------------
  /// Sustained single-core compute throughput (single-precision FLOP/s).
  double flops_per_second = 32e9;
  /// Plain DRAM streaming bandwidth, bytes/s.
  double dram_bandwidth = 12e9;
  /// Extra per-byte cost of reads/writes that hit EPC through the MEE
  /// (cache-line encryption); applied in Hardware mode only.
  double mee_overhead_per_byte_ns = 0.11;
  /// Memory traffic generated per FLOP of enclave compute (cache misses on
  /// activations/weights during kernels). Workload-specific intensity is
  /// set per model (see core/workloads.h); this is the default.
  double compute_bytes_per_flop = 0.25;
  /// Throughput multiple of int8 integer ops over float32 (VNNI-class 8-bit
  /// dot products execute ~4 MACs per float FMA slot); the int8 kernels
  /// also move 1/4 the bytes per op, so the MEE term scales down with it
  /// (docs/QUANTIZATION.md).
  double int8_ops_multiple = 4.0;
  /// SCONE-runtime overhead multiplier on in-enclave compute. Inference
  /// containers see ~5% (the paper's SIM-vs-native gap, §5.3 #1); the
  /// distributed-training path sees ~2.3x, which the paper attributes to a
  /// SCONE scheduling defect (§5.4) — reproduced here as a calibrated
  /// constant so Figure 8 keeps its published shape.
  double runtime_overhead_inference = 1.05;
  double runtime_overhead_training = 2.3;
  /// Per-byte stall of the network shield's in-enclave record path under the
  /// same scheduler defect (the SIM+shield vs SIM-no-shield gap in Fig. 8).
  double netshield_stall_ns_per_byte = 112;

  // --- EPC & paging ----------------------------------------------------
  std::uint64_t page_size = 4096;
  /// Usable EPC in bytes (~94 MB on SGXv1 as the paper states).
  std::uint64_t epc_bytes = 94ull * 1024 * 1024;
  /// Cost of evicting one EPC page (EWB: version tracking + AES-GCM) and of
  /// loading one back (ELDU: decrypt + integrity check). Dominated by crypto
  /// and kernel involvement; ~40k cycles each on SGXv1.
  std::uint64_t page_evict_ns = 14000;
  std::uint64_t page_load_ns = 14000;
  /// Page fault kernel entry/exit + enclave AEX on an EPC miss.
  std::uint64_t page_fault_ns = 7000;
  /// Prefetching a page ahead of use (EPC-aware streaming, §3.3 async-queue
  /// analog): the ELDU runs on a host thread while the enclave computes, so
  /// only the enqueue hop plus the non-overlappable decrypt tail lands on
  /// the critical path — no AEX, no demand fault.
  std::uint64_t page_prefetch_ns = 2500;
  /// Advising a page out ahead of reuse pressure: enqueue on the async
  /// syscall queue; the EWB itself runs off the critical path.
  std::uint64_t page_advise_evict_ns = 700;

  // --- untrusted accelerator (Slalom offload, §7.4) ---------------------
  /// Sustained throughput of the simulated untrusted GPU the Slalom backend
  /// offloads linear layers to (consumer-GPU class, single precision).
  double gpu_flops_per_second = 500e9;
  /// Host <-> GPU transfer bandwidth (PCIe 3.0 x16 class), bytes/s. Every
  /// offloaded layer ships its activations down and its result back.
  double pcie_bandwidth = 12e9;

  // --- transitions & syscalls -------------------------------------------
  /// Synchronous enclave transition (EENTER/EEXIT pair), ~8k cycles.
  std::uint64_t transition_ns = 2100;
  /// Asynchronous (SCONE-style) syscall: enqueue + dequeue on shared queue,
  /// no transition.
  std::uint64_t async_syscall_ns = 700;
  /// Kernel time of a cheap syscall once it reaches the OS.
  std::uint64_t syscall_kernel_ns = 900;
  /// User-level thread context switch inside the enclave.
  std::uint64_t uthread_switch_ns = 120;

  // --- crypto (shield data paths) ---------------------------------------
  /// Effective AES-GCM throughput of the shields outside SGX: AES-NI runs at
  /// up to 4 GB/s (the paper's figure), but the shield also copies data
  /// in/out of its buffers, so the end-to-end rate is lower.
  double aead_bandwidth = 1.4e9;
  /// Effective AEAD throughput when the crypto runs *inside* an SGXv1
  /// enclave (buffer copies across the boundary + MEE on every byte).
  double hw_aead_bandwidth = 175e6;
  /// Fixed per-record / per-chunk AEAD cost (key schedule, tag, framing).
  std::uint64_t aead_record_ns = 450;

  // --- attestation -------------------------------------------------------
  /// EPID quote generation by the quoting enclave.
  std::uint64_t quote_generation_ns = 11'500'000;  // ~11.5 ms
  /// Local CAS quote verification (paper: < 1 ms).
  std::uint64_t cas_quote_verify_ns = 800'000;     // 0.8 ms
  /// IAS quote verification incl. WAN round trips (paper: ~280 ms).
  std::uint64_t ias_quote_verify_ns = 280'000'000;
  /// TLS handshake (ECDHE + certificate checks) on the local network.
  std::uint64_t tls_handshake_ns = 2'400'000;      // 2.4 ms

  // --- network -----------------------------------------------------------
  /// 1 Gb/s switched LAN (the paper's cluster interconnect).
  double lan_bandwidth = 125e6;  // bytes/s
  std::uint64_t lan_rtt_ns = 200'000;      // 0.2 ms
  /// WAN to the Intel Attestation Service.
  double wan_bandwidth = 12.5e6;
  std::uint64_t wan_rtt_ns = 18'000'000;   // 18 ms

  // ---- derived helpers ----------------------------------------------------
  [[nodiscard]] std::uint64_t compute_ns(double flops) const {
    return static_cast<std::uint64_t>(flops / flops_per_second * 1e9);
  }
  [[nodiscard]] std::uint64_t int8_compute_ns(double ops) const {
    return static_cast<std::uint64_t>(
        ops / (flops_per_second * int8_ops_multiple) * 1e9);
  }
  [[nodiscard]] std::uint64_t gpu_compute_ns(double flops) const {
    return static_cast<std::uint64_t>(flops / gpu_flops_per_second * 1e9);
  }
  [[nodiscard]] std::uint64_t pcie_ns(std::uint64_t bytes) const {
    return static_cast<std::uint64_t>(static_cast<double>(bytes) /
                                      pcie_bandwidth * 1e9);
  }
  [[nodiscard]] std::uint64_t dram_ns(std::uint64_t bytes) const {
    return static_cast<std::uint64_t>(static_cast<double>(bytes) /
                                      dram_bandwidth * 1e9);
  }
  [[nodiscard]] std::uint64_t aead_ns(std::uint64_t bytes) const {
    return aead_record_ns + static_cast<std::uint64_t>(
                                static_cast<double>(bytes) / aead_bandwidth * 1e9);
  }
  /// Full network-shield record cost: AEAD plus the in-enclave record-path
  /// stall (copies + scheduler interaction).
  [[nodiscard]] std::uint64_t netshield_ns(std::uint64_t bytes) const {
    return aead_ns(bytes) + static_cast<std::uint64_t>(
                                static_cast<double>(bytes) *
                                netshield_stall_ns_per_byte);
  }
  [[nodiscard]] std::uint64_t lan_transfer_ns(std::uint64_t bytes) const {
    return lan_rtt_ns / 2 + static_cast<std::uint64_t>(
                                static_cast<double>(bytes) / lan_bandwidth * 1e9);
  }
  [[nodiscard]] std::uint64_t wan_transfer_ns(std::uint64_t bytes) const {
    return wan_rtt_ns / 2 + static_cast<std::uint64_t>(
                                static_cast<double>(bytes) / wan_bandwidth * 1e9);
  }
  [[nodiscard]] std::uint64_t epc_pages() const {
    return epc_bytes / page_size;
  }
};

}  // namespace stf::tee
