// A platform: one physical machine in the simulated cluster.
//
// Owns the virtual clock, the EPC, the quoting enclave, and the execution
// mode (Native / SIM / HW). Multi-node experiments build several platforms
// and connect them through stf::net.
#pragma once

#include <memory>
#include <string>

#include "obs/profile.h"
#include "tee/attestation.h"
#include "tee/cost_model.h"
#include "tee/enclave.h"
#include "tee/epc.h"
#include "tee/memory_env.h"
#include "tee/sim_clock.h"

namespace stf::tee {

class Platform {
 public:
  /// Registers the platform with `authority` (installs the provisioning
  /// secret into the quoting enclave) and sets up the EPC for `mode`.
  Platform(std::string name, TeeMode mode, const CostModel& model,
           ProvisioningAuthority& authority, unsigned cores = 4);

  /// A platform without attestation capability (for pure perf experiments).
  Platform(std::string name, TeeMode mode, const CostModel& model,
           unsigned cores = 4);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] TeeMode mode() const { return mode_; }
  [[nodiscard]] const CostModel& model() const { return model_; }
  [[nodiscard]] unsigned cores() const { return cores_; }

  [[nodiscard]] SimClock& clock() { return *active_clock_; }
  [[nodiscard]] const SimClock& clock() const { return *active_clock_; }
  [[nodiscard]] SimClock& base_clock() { return clock_; }

  /// Redirects cost charging to `lane` (used by the scale-up benchmarks to
  /// model per-core time lanes sharing one EPC). Passing nullptr restores
  /// the platform's own clock.
  void set_active_lane(SimClock* lane) {
    active_clock_ = lane != nullptr ? lane : &clock_;
  }

  [[nodiscard]] EpcManager& epc() { return epc_; }
  [[nodiscard]] const EpcManager& epc() const { return epc_; }

  [[nodiscard]] std::unique_ptr<Enclave> launch_enclave(EnclaveImage image) {
    return std::make_unique<Enclave>(*this, std::move(image));
  }

  /// Quote generation (EPID signing by the quoting enclave); charges the
  /// calibrated latency. Throws if the platform was built unprovisioned.
  [[nodiscard]] Quote quote(const Report& report,
                            const std::array<std::uint8_t, 16>& nonce);

 private:
  std::string name_;
  TeeMode mode_;
  CostModel model_;
  unsigned cores_;
  SimClock clock_;
  SimClock* active_clock_ = &clock_;
  EpcManager epc_;
  std::unique_ptr<QuotingEnclave> quoting_enclave_;
};

/// Baseline environment for Native mode: charges DRAM + compute time only.
class NativeEnv final : public MemoryEnv {
 public:
  NativeEnv(const CostModel& model, SimClock& clock)
      : model_(model), clock_(&clock) {}

  std::uint64_t alloc(std::string_view, std::uint64_t) override {
    return next_id_++;
  }
  void release(std::uint64_t) override {}
  void access(std::uint64_t, std::uint64_t, std::uint64_t len, bool) override {
    obs::ScopedCategory attribution(obs::Category::kCompute);
    clock_->advance(model_.dram_ns(len));
  }
  void compute(double flops) override {
    obs::ScopedCategory attribution(obs::Category::kCompute);
    clock_->advance(model_.compute_ns(flops));
  }
  void compute_int8(double ops) override {
    obs::ScopedCategory attribution(obs::Category::kCompute);
    clock_->advance(model_.int8_compute_ns(ops));
  }
  void gpu_compute(double flops) override {
    obs::ScopedCategory attribution(obs::Category::kGpu);
    clock_->advance(model_.gpu_compute_ns(flops));
  }
  void pcie_transfer(std::uint64_t bytes) override {
    obs::ScopedCategory attribution(obs::Category::kPcie);
    clock_->advance(model_.pcie_ns(bytes));
  }
  [[nodiscard]] std::uint64_t now_ns() const override {
    return clock_->now_ns();
  }

  void set_clock(SimClock& clock) { clock_ = &clock; }

 private:
  const CostModel& model_;
  SimClock* clock_;
  std::uint64_t next_id_ = 1;
};

}  // namespace stf::tee
