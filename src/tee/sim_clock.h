// Virtual time for the TEE / network simulation.
//
// Every performance-relevant event in the reproduction (EPC page faults,
// enclave transitions, crypto on shield boundaries, WAN round trips, model
// FLOPs) charges virtual nanoseconds into a SimClock instead of relying on
// wall-clock time. This makes every figure deterministic and lets the
// benchmarks reproduce the *shape* of the paper's results without the
// authors' hardware.
#pragma once

#include <algorithm>
#include <cstdint>

namespace stf::tee {

/// Monotonic virtual clock, nanosecond resolution.
class SimClock {
 public:
  using Ns = std::uint64_t;

  void advance(Ns ns) { now_ns_ += ns; }
  [[nodiscard]] Ns now_ns() const { return now_ns_; }
  [[nodiscard]] double now_ms() const { return static_cast<double>(now_ns_) / 1e6; }
  [[nodiscard]] double now_s() const { return static_cast<double>(now_ns_) / 1e9; }

  /// Jumps forward to `t` if it is in the future (used when synchronizing
  /// with another lane, e.g. after a network receive or a barrier).
  void advance_to(Ns t) { now_ns_ = std::max(now_ns_, t); }

  /// Simulation control: sets the clock to an absolute time, including
  /// backwards. Used by orchestrators that replay logically-parallel work
  /// (e.g. sharded parameter-server pushes) on one physical clock.
  void set_ns(Ns t) { now_ns_ = t; }

  void reset() { now_ns_ = 0; }

 private:
  Ns now_ns_ = 0;
};

/// Elapsed-time probe: measures the virtual time spent in a scope.
class SimStopwatch {
 public:
  explicit SimStopwatch(const SimClock& clock)
      : clock_(clock), start_(clock.now_ns()) {}
  [[nodiscard]] SimClock::Ns elapsed_ns() const {
    return clock_.now_ns() - start_;
  }
  [[nodiscard]] double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }
  [[nodiscard]] double elapsed_s() const {
    return static_cast<double>(elapsed_ns()) / 1e9;
  }

 private:
  const SimClock& clock_;
  SimClock::Ns start_;
};

}  // namespace stf::tee
