// Virtual time for the TEE / network simulation.
//
// Every performance-relevant event in the reproduction (EPC page faults,
// enclave transitions, crypto on shield boundaries, WAN round trips, model
// FLOPs) charges virtual nanoseconds into a SimClock instead of relying on
// wall-clock time. This makes every figure deterministic and lets the
// benchmarks reproduce the *shape* of the paper's results without the
// authors' hardware.
#pragma once

#include <algorithm>
#include <cstdint>

namespace stf::tee {

/// Observer of clock mutations, used by the attribution profiler
/// (obs::ScopedAttribution). `on_advance` fires for every elapsed-time
/// charge (advance / forward advance_to); `on_warp` fires for timeline
/// adjustments (set_ns / reset), which model logically-parallel lanes
/// replayed on one clock and are *not* elapsed work. A clock with no sink
/// pays one null-pointer check per mutation, so profiling off leaves every
/// figure byte-identical.
class ClockSink {
 public:
  virtual ~ClockSink() = default;
  virtual void on_advance(std::uint64_t delta_ns) = 0;
  virtual void on_warp(std::int64_t delta_ns) = 0;
};

/// Monotonic virtual clock, nanosecond resolution.
class SimClock {
 public:
  using Ns = std::uint64_t;

  void advance(Ns ns) {
    now_ns_ += ns;
    if (sink_ != nullptr && ns != 0) sink_->on_advance(ns);
  }
  [[nodiscard]] Ns now_ns() const { return now_ns_; }
  [[nodiscard]] double now_ms() const { return static_cast<double>(now_ns_) / 1e6; }
  [[nodiscard]] double now_s() const { return static_cast<double>(now_ns_) / 1e9; }

  /// Jumps forward to `t` if it is in the future (used when synchronizing
  /// with another lane, e.g. after a network receive or a barrier).
  void advance_to(Ns t) {
    if (t > now_ns_) {
      const Ns delta = t - now_ns_;
      now_ns_ = t;
      if (sink_ != nullptr) sink_->on_advance(delta);
    }
  }

  /// Simulation control: sets the clock to an absolute time, including
  /// backwards. Used by orchestrators that replay logically-parallel work
  /// (e.g. sharded parameter-server pushes) on one physical clock. Reported
  /// to the sink as a warp, not elapsed time.
  void set_ns(Ns t) {
    if (sink_ != nullptr && t != now_ns_) {
      sink_->on_warp(static_cast<std::int64_t>(t) -
                     static_cast<std::int64_t>(now_ns_));
    }
    now_ns_ = t;
  }

  void reset() { set_ns(0); }

  /// Attribution hook. The installer must restore the previous sink when
  /// done (see obs::ScopedAttribution, which chains nested sinks).
  [[nodiscard]] ClockSink* sink() const { return sink_; }
  void set_sink(ClockSink* sink) { sink_ = sink; }

 private:
  Ns now_ns_ = 0;
  ClockSink* sink_ = nullptr;
};

/// Elapsed-time probe: measures the virtual time spent in a scope.
class SimStopwatch {
 public:
  explicit SimStopwatch(const SimClock& clock)
      : clock_(clock), start_(clock.now_ns()) {}
  [[nodiscard]] SimClock::Ns elapsed_ns() const {
    return clock_.now_ns() - start_;
  }
  [[nodiscard]] double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }
  [[nodiscard]] double elapsed_s() const {
    return static_cast<double>(elapsed_ns()) / 1e9;
  }

 private:
  const SimClock& clock_;
  SimClock::Ns start_;
};

}  // namespace stf::tee
