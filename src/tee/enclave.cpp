#include "tee/enclave.h"

#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/profile.h"
#include "obs/span.h"
#include "tee/platform.h"

namespace stf::tee {
namespace {

// Process-wide series shared by all enclaves; resolved once per site.
obs::Counter& launches_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      obs::names::kEnclaveLaunches, "enclaves created (ECREATE)");
  return c;
}
obs::Counter& transitions_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      obs::names::kEnclaveTransitions, "EENTER/EEXIT transition pairs");
  return c;
}
obs::Counter& syscalls_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      obs::names::kEnclaveSyscalls, "syscalls issued from inside enclaves");
  return c;
}
obs::Counter& syscall_bytes_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      obs::names::kEnclaveSyscallBytes,
      "bytes copied across the boundary by syscalls", obs::Unit::Bytes);
  return c;
}
std::uint32_t transition_span_id() {
  static std::uint32_t id =
      obs::SpanTracer::global().intern(obs::names::kSpanEnclaveTransition);
  return id;
}

}  // namespace

Measurement EnclaveImage::measure() const {
  // The instance name is deployment metadata, not part of the measured
  // image: every container built from the same binary + attributes must
  // produce the same MRENCLAVE (that is what makes elastic scale-out work
  // with a single CAS policy).
  crypto::Sha256 h;
  h.update(content);
  std::uint8_t attr[3] = {static_cast<std::uint8_t>(attributes.debug ? 1 : 0),
                          static_cast<std::uint8_t>(attributes.isv_svn >> 8),
                          static_cast<std::uint8_t>(attributes.isv_svn)};
  h.update(crypto::BytesView(attr, sizeof attr));
  return h.finish();
}

Enclave::Enclave(Platform& platform, EnclaveImage image)
    : platform_(platform), image_(std::move(image)) {
  mrenclave_ = image_.measure();
  // The loaded binary occupies EPC for the enclave's lifetime; fault it in
  // now (EADD copies every page through the MEE).
  binary_region_ =
      platform_.epc().map_region(image_.name + "/binary", image_.binary_bytes);
  platform_.epc().access_all(binary_region_, /*write=*/true, platform_.clock());
  launches_counter().add();
}

Enclave::~Enclave() { platform_.epc().unmap_region(binary_region_); }

TeeMode Enclave::mode() const { return platform_.mode(); }

Report Enclave::create_report(
    const std::array<std::uint8_t, 64>& report_data) const {
  Report r;
  r.mrenclave = mrenclave_;
  r.mrsigner = image_.signer;
  r.attributes = image_.attributes;
  r.report_data = report_data;
  return r;
}

RegionId Enclave::alloc_region(std::string_view label, std::uint64_t bytes) {
  return platform_.epc().map_region(image_.name + "/" + std::string(label),
                                    bytes);
}

void Enclave::release_region(RegionId id) {
  platform_.epc().unmap_region(id);
}

void Enclave::access(RegionId id, std::uint64_t offset, std::uint64_t len,
                     bool write) {
  // Baseline DRAM traffic cost applies in every mode; the EPC manager adds
  // MEE and paging costs in Hardware mode (attributed to epc_paging by the
  // manager itself).
  {
    obs::ScopedCategory attribution(obs::Category::kCompute);
    platform_.clock().advance(platform_.model().dram_ns(len));
  }
  platform_.epc().access(id, offset, len, write, platform_.clock());
}

void Enclave::compute(double flops) {
  const CostModel& m = platform_.model();
  obs::ScopedCategory attribution(obs::Category::kCompute);
  // Base compute, inflated by the SCONE runtime overhead for this container.
  platform_.clock().advance(static_cast<std::uint64_t>(
      static_cast<double>(m.compute_ns(flops)) * runtime_overhead_));
  // In HW mode every cache miss of the kernels crosses the MEE; the traffic
  // is proportional to the arithmetic with a workload-specific intensity.
  if (platform_.mode() == TeeMode::Hardware) {
    const double bpf = bytes_per_flop_ >= 0 ? bytes_per_flop_
                                            : m.compute_bytes_per_flop;
    platform_.clock().advance(static_cast<std::uint64_t>(
        flops * bpf * m.mee_overhead_per_byte_ns));
  }
}

void Enclave::compute_int8(double ops) {
  const CostModel& m = platform_.model();
  obs::ScopedCategory attribution(obs::Category::kCompute);
  platform_.clock().advance(static_cast<std::uint64_t>(
      static_cast<double>(m.int8_compute_ns(ops)) * runtime_overhead_));
  // Same MEE model as compute(), with 1-byte operands: a quarter of the
  // per-op traffic crosses the encryption engine.
  if (platform_.mode() == TeeMode::Hardware) {
    const double bpf = bytes_per_flop_ >= 0 ? bytes_per_flop_
                                            : m.compute_bytes_per_flop;
    platform_.clock().advance(static_cast<std::uint64_t>(
        ops * (bpf / m.int8_ops_multiple) * m.mee_overhead_per_byte_ns));
  }
}

void Enclave::gpu_compute(double flops) {
  // Offloaded work executes outside the TEE: no SCONE runtime multiplier,
  // no MEE traffic — the untrusted accelerator runs at its native rate.
  obs::ScopedCategory attribution(obs::Category::kGpu);
  platform_.clock().advance(platform_.model().gpu_compute_ns(flops));
}

void Enclave::pcie_transfer(std::uint64_t bytes) {
  obs::ScopedCategory attribution(obs::Category::kPcie);
  platform_.clock().advance(platform_.model().pcie_ns(bytes));
}

void Enclave::prefetch_region(RegionId id, std::uint64_t offset,
                              std::uint64_t len) {
  platform_.epc().prefetch(id, offset, len, platform_.clock());
}

void Enclave::advise_evict_region(RegionId id, std::uint64_t offset,
                                  std::uint64_t len) {
  platform_.epc().advise_evict(id, offset, len, platform_.clock());
}

void Enclave::pin_region(RegionId id) { platform_.epc().pin(id); }

void Enclave::unpin_region(RegionId id) { platform_.epc().unpin(id); }

void Enclave::touch_binary(double fraction) {
  const std::uint64_t bytes = static_cast<std::uint64_t>(
      static_cast<double>(image_.binary_bytes) * std::min(1.0, fraction));
  platform_.epc().access(binary_region_, 0, bytes, /*write=*/false,
                         platform_.clock());
}

void Enclave::charge_transition() {
  obs::ScopedCategory attribution(obs::Category::kTransition);
  const std::uint64_t start = platform_.clock().now_ns();
  platform_.clock().advance(platform_.model().transition_ns);
  transitions_counter().add();
  obs::SpanTracer::global().record(transition_span_id(), start,
                                   platform_.clock().now_ns());
}

void Enclave::syscall(std::uint64_t bytes_copied, bool asynchronous) {
  ++syscall_count_;
  syscalls_counter().add();
  syscall_bytes_counter().add(bytes_copied);
  const CostModel& m = platform_.model();
  SimClock& clock = platform_.clock();
  if (asynchronous) {
    // SCONE exit-less syscall: the request crosses a shared queue; an
    // outside thread runs the kernel part while the enclave thread yields.
    obs::ScopedCategory attribution(obs::Category::kSyscall);
    clock.advance(m.async_syscall_ns + m.syscall_kernel_ns);
  } else {
    // The EENTER/EEXIT pair is a transition cost even when a syscall
    // triggers it; only the kernel part is syscall time. The split leaves
    // the total unchanged.
    {
      obs::ScopedCategory attribution(obs::Category::kTransition);
      clock.advance(m.transition_ns);
    }
    obs::ScopedCategory attribution(obs::Category::kSyscall);
    clock.advance(m.syscall_kernel_ns);
  }
  // Arguments/results are copied across the enclave boundary.
  obs::ScopedCategory attribution(obs::Category::kSyscall);
  clock.advance(m.dram_ns(bytes_copied));
}

void Enclave::charge_uthread_switch() {
  obs::ScopedCategory attribution(obs::Category::kTransition);
  platform_.clock().advance(platform_.model().uthread_switch_ns);
}

std::uint64_t Enclave::now_ns() const { return platform_.clock().now_ns(); }

}  // namespace stf::tee
