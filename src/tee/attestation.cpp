#include "tee/attestation.h"

#include "crypto/drbg.h"
#include "crypto/hmac.h"

namespace stf::tee {

crypto::Bytes Report::serialize() const {
  crypto::Bytes out;
  out.reserve(32 + 32 + 4 + 64);
  crypto::append(out, crypto::BytesView(mrenclave.data(), mrenclave.size()));
  crypto::append(out, crypto::BytesView(mrsigner.data(), mrsigner.size()));
  out.push_back(attributes.debug ? 1 : 0);
  out.push_back(static_cast<std::uint8_t>(attributes.isv_svn >> 8));
  out.push_back(static_cast<std::uint8_t>(attributes.isv_svn));
  crypto::append(out,
                 crypto::BytesView(report_data.data(), report_data.size()));
  return out;
}

crypto::Bytes Quote::serialize_without_mac() const {
  crypto::Bytes out = report.serialize();
  crypto::append(out, crypto::to_bytes(platform_id));
  crypto::append(out, crypto::BytesView(nonce.data(), nonce.size()));
  return out;
}

crypto::Bytes ProvisioningAuthority::register_platform(
    const std::string& platform_id) {
  crypto::Bytes secret =
      crypto::HmacDrbg(crypto::to_bytes("provision:" + platform_id))
          .generate(32);
  secrets_[platform_id] = secret;
  return secret;
}

crypto::Sha256::Digest ProvisioningAuthority::attestation_key(
    crypto::BytesView secret) {
  return crypto::hmac_sha256(secret, crypto::to_bytes("attestation-key"));
}

bool ProvisioningAuthority::verify(
    const Quote& quote, const std::array<std::uint8_t, 16>& nonce) const {
  const auto it = secrets_.find(quote.platform_id);
  if (it == secrets_.end()) return false;
  if (!crypto::ct_equal(crypto::BytesView(quote.nonce.data(), 16),
                        crypto::BytesView(nonce.data(), 16))) {
    return false;
  }
  const auto key = attestation_key(it->second);
  const auto expected = crypto::hmac_sha256(
      crypto::BytesView(key.data(), key.size()),
      quote.serialize_without_mac());
  return crypto::ct_equal(crypto::BytesView(expected.data(), expected.size()),
                          crypto::BytesView(quote.mac.data(), 32));
}

QuotingEnclave::QuotingEnclave(std::string platform_id,
                               crypto::Bytes provisioning_secret)
    : platform_id_(std::move(platform_id)),
      attestation_key_(ProvisioningAuthority::attestation_key(
          provisioning_secret)) {}

Quote QuotingEnclave::quote(const Report& report,
                            const std::array<std::uint8_t, 16>& nonce) const {
  Quote q;
  q.report = report;
  q.platform_id = platform_id_;
  q.nonce = nonce;
  const auto mac = crypto::hmac_sha256(
      crypto::BytesView(attestation_key_.data(), attestation_key_.size()),
      q.serialize_without_mac());
  std::copy(mac.begin(), mac.end(), q.mac.begin());
  return q;
}

}  // namespace stf::tee
