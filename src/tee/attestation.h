// Attestation primitives: reports, quotes, and the provisioning authority.
//
// Real SGX attestation: an enclave produces a *report* (its measurement plus
// 64 bytes of user data) which the platform's quoting enclave signs with a
// platform-specific EPID key into a *quote*; Intel's provisioning service
// knows which EPID keys belong to genuine platforms, and IAS (or a cached
// verifier such as SCONE's CAS) checks the signature.
//
// Substitution (DESIGN.md §1): EPID group signatures are replaced by an HMAC
// under a per-platform attestation key derived from a provisioning secret
// registered with a simulated `ProvisioningAuthority`. The trust topology is
// identical — only entities holding provisioning material can verify — while
// keeping the code dependency-free. Freshness is carried by a
// verifier-chosen nonce bound into the quote.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "crypto/bytes.h"
#include "crypto/sha256.h"

namespace stf::tee {

using Measurement = std::array<std::uint8_t, 32>;

/// SGX-like enclave attributes relevant to policy decisions.
struct EnclaveAttributes {
  bool debug = false;       ///< debug enclaves are rejected by strict policies
  std::uint16_t isv_svn = 1;  ///< security version number of the enclave
};

/// Report: what an enclave asserts about itself (EREPORT analogue).
struct Report {
  Measurement mrenclave{};  ///< SHA-256 of the initial enclave image
  Measurement mrsigner{};   ///< identity of the image signer
  EnclaveAttributes attributes;
  std::array<std::uint8_t, 64> report_data{};  ///< user payload (e.g. key hash)

  [[nodiscard]] crypto::Bytes serialize() const;
};

/// Quote: a report bound to a platform and nonce, authenticated by the
/// platform attestation key.
struct Quote {
  Report report;
  std::string platform_id;
  std::array<std::uint8_t, 16> nonce{};
  std::array<std::uint8_t, 32> mac{};

  [[nodiscard]] crypto::Bytes serialize_without_mac() const;
};

/// The provisioning registry: knows the secret of every genuine platform.
/// Both the IAS simulator and CAS verify quotes through one of these
/// (CAS caches the provisioning material locally, which is exactly why it
/// avoids the WAN round trips of IAS — Figure 4).
class ProvisioningAuthority {
 public:
  /// Registers a platform and returns its provisioning secret (installed
  /// into the platform's quoting enclave at manufacture time).
  crypto::Bytes register_platform(const std::string& platform_id);

  /// Verifies the MAC of `quote` and the expected `nonce`.
  /// Returns false for unknown platforms, bad MACs, or stale nonces.
  [[nodiscard]] bool verify(const Quote& quote,
                            const std::array<std::uint8_t, 16>& nonce) const;

  [[nodiscard]] bool known_platform(const std::string& platform_id) const {
    return secrets_.contains(platform_id);
  }

  /// Derives the attestation (MAC) key for a provisioning secret.
  static crypto::Sha256::Digest attestation_key(crypto::BytesView secret);

 private:
  std::unordered_map<std::string, crypto::Bytes> secrets_;
};

/// The quoting enclave of one platform: turns reports into quotes.
class QuotingEnclave {
 public:
  QuotingEnclave(std::string platform_id, crypto::Bytes provisioning_secret);

  [[nodiscard]] Quote quote(const Report& report,
                            const std::array<std::uint8_t, 16>& nonce) const;

  [[nodiscard]] const std::string& platform_id() const { return platform_id_; }

 private:
  std::string platform_id_;
  crypto::Sha256::Digest attestation_key_;
};

}  // namespace stf::tee
