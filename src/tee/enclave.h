// Enclave lifecycle, measurement, and in-enclave memory accounting.
//
// An `Enclave` is created from an `EnclaveImage` (the code/data loaded at
// ECREATE/EADD time); its MRENCLAVE is the SHA-256 over that initial image,
// so any modification of the shipped binary or configuration changes the
// measurement and is caught at attestation (CAS policy check). The image
// itself occupies EPC: this is why the paper's TF-Lite container (1.9 MB
// binary) behaves so differently from full TensorFlow (87.4 MB binary).
#pragma once

#include <memory>
#include <string>

#include "crypto/bytes.h"
#include "tee/attestation.h"
#include "tee/cost_model.h"
#include "tee/epc.h"
#include "tee/memory_env.h"
#include "tee/sim_clock.h"

namespace stf::tee {

class Platform;

/// The initial contents of an enclave: code plus static data. `content`
/// feeds the measurement; `binary_bytes` is the EPC footprint of the image
/// (code + static data + runtime), which stays resident for the enclave's
/// lifetime.
struct EnclaveImage {
  std::string name;
  crypto::Bytes content;            ///< measured bytes (binary + config)
  std::uint64_t binary_bytes = 0;   ///< EPC footprint of the loaded image
  Measurement signer{};             ///< MRSIGNER identity
  EnclaveAttributes attributes;

  [[nodiscard]] Measurement measure() const;
};

class Enclave {
 public:
  /// Created via Platform::launch_enclave().
  Enclave(Platform& platform, EnclaveImage image);
  ~Enclave();

  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  [[nodiscard]] const Measurement& mrenclave() const { return mrenclave_; }
  [[nodiscard]] const EnclaveImage& image() const { return image_; }
  [[nodiscard]] Platform& platform() { return platform_; }
  [[nodiscard]] TeeMode mode() const;

  /// EREPORT: binds 64 bytes of user data (e.g. the hash of a session public
  /// key) to this enclave's identity.
  [[nodiscard]] Report create_report(
      const std::array<std::uint8_t, 64>& report_data) const;

  // --- memory (region handles are EPC regions) -------------------------
  RegionId alloc_region(std::string_view label, std::uint64_t bytes);
  void release_region(RegionId id);
  void access(RegionId id, std::uint64_t offset, std::uint64_t len, bool write);
  void compute(double flops);
  /// int8 integer ops (quantized kernels): same runtime-overhead multiplier
  /// as compute(), but at the cost model's int8 throughput multiple and a
  /// quarter of the per-op MEE traffic (1-byte operands).
  void compute_int8(double ops);
  /// Work offloaded to the untrusted accelerator (docs/GPU_OFFLOAD.md):
  /// billed at the cost model's GPU rate under profile.gpu, with no runtime
  /// overhead and no MEE traffic — it runs outside the TEE.
  void gpu_compute(double flops);
  /// Host<->GPU activation/weight shipping, billed under profile.pcie.
  void pcie_transfer(std::uint64_t bytes);
  /// EPC streaming hints (forwarded to the platform's EpcManager; no-ops
  /// outside Hardware mode). See docs/MEMORY_PLANNER.md.
  void prefetch_region(RegionId id, std::uint64_t offset, std::uint64_t len);
  void advise_evict_region(RegionId id, std::uint64_t offset,
                           std::uint64_t len);
  void pin_region(RegionId id);
  void unpin_region(RegionId id);

  // --- transitions and syscalls -----------------------------------------
  /// A synchronous enclave transition pair (EENTER + EEXIT).
  void charge_transition();
  /// A system call issued from inside. With `asynchronous` (SCONE's
  /// exit-less interface) no transition happens; otherwise it costs a full
  /// exit + re-entry around the kernel work.
  void syscall(std::uint64_t bytes_copied, bool asynchronous);
  /// A user-level thread switch inside the enclave.
  void charge_uthread_switch();

  [[nodiscard]] std::uint64_t syscall_count() const { return syscall_count_; }

  /// Virtual time of the platform clock this enclave charges into.
  [[nodiscard]] std::uint64_t now_ns() const;

  /// The region that pins the enclave binary in the EPC.
  [[nodiscard]] RegionId binary_region() const { return binary_region_; }

  /// Touches the leading `fraction` of the binary image (the hot code +
  /// static data executed during one unit of work); in HW mode this is what
  /// makes a large binary compete with model data for EPC residency.
  void touch_binary(double fraction = 1.0);

  /// SCONE-runtime compute multiplier for this container (inference ~1.05,
  /// training ~2.3; see CostModel). Memory-traffic intensity of the
  /// workload's kernels is configured with bytes_per_flop.
  void set_runtime_overhead(double factor) { runtime_overhead_ = factor; }
  void set_compute_bytes_per_flop(double bpf) { bytes_per_flop_ = bpf; }

 private:
  Platform& platform_;
  EnclaveImage image_;
  Measurement mrenclave_;
  RegionId binary_region_ = 0;
  std::uint64_t syscall_count_ = 0;
  double runtime_overhead_ = 1.05;
  double bytes_per_flop_ = -1;  // negative: use the model default
};

/// MemoryEnv adapter that routes the ML executor's traffic into an Enclave.
class EnclaveEnv final : public MemoryEnv {
 public:
  explicit EnclaveEnv(Enclave& enclave) : enclave_(enclave) {}

  std::uint64_t alloc(std::string_view label, std::uint64_t bytes) override {
    return enclave_.alloc_region(label, bytes);
  }
  void release(std::uint64_t region) override {
    enclave_.release_region(region);
  }
  void access(std::uint64_t region, std::uint64_t offset, std::uint64_t len,
              bool write) override {
    enclave_.access(region, offset, len, write);
  }
  void compute(double flops) override { enclave_.compute(flops); }
  void compute_int8(double ops) override { enclave_.compute_int8(ops); }
  void gpu_compute(double flops) override { enclave_.gpu_compute(flops); }
  void pcie_transfer(std::uint64_t bytes) override {
    enclave_.pcie_transfer(bytes);
  }
  void prefetch(std::uint64_t region, std::uint64_t offset,
                std::uint64_t len) override {
    enclave_.prefetch_region(region, offset, len);
  }
  void advise_evict(std::uint64_t region, std::uint64_t offset,
                    std::uint64_t len) override {
    enclave_.advise_evict_region(region, offset, len);
  }
  void pin(std::uint64_t region) override { enclave_.pin_region(region); }
  void unpin(std::uint64_t region) override { enclave_.unpin_region(region); }
  [[nodiscard]] std::uint64_t now_ns() const override {
    return enclave_.now_ns();
  }

 private:
  Enclave& enclave_;
};

}  // namespace stf::tee
