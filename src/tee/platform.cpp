#include "tee/platform.h"

#include <stdexcept>

namespace stf::tee {

Platform::Platform(std::string name, TeeMode mode, const CostModel& model,
                   ProvisioningAuthority& authority, unsigned cores)
    : name_(std::move(name)),
      mode_(mode),
      model_(model),
      cores_(cores),
      epc_(model_, /*limited=*/mode == TeeMode::Hardware) {
  auto secret = authority.register_platform(name_);
  quoting_enclave_ = std::make_unique<QuotingEnclave>(name_, std::move(secret));
}

Platform::Platform(std::string name, TeeMode mode, const CostModel& model,
                   unsigned cores)
    : name_(std::move(name)),
      mode_(mode),
      model_(model),
      cores_(cores),
      epc_(model_, /*limited=*/mode == TeeMode::Hardware) {}

Quote Platform::quote(const Report& report,
                      const std::array<std::uint8_t, 16>& nonce) {
  if (!quoting_enclave_) {
    throw std::logic_error("Platform '" + name_ +
                           "' has no provisioned quoting enclave");
  }
  {
    obs::ScopedCategory attribution(obs::Category::kCrypto);
    clock().advance(model_.quote_generation_ns);
  }
  return quoting_enclave_->quote(report, nonce);
}

}  // namespace stf::tee
