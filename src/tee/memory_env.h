// Memory/compute environment abstraction.
//
// The ML executor (stf::ml) is agnostic to where it runs: natively, inside a
// simulated SGX enclave in SIM mode, or in HW mode. It reports its memory
// traffic and arithmetic through this interface; the concrete environment
// decides what those cost. This is the single integration point between the
// workload and the TEE cost simulation.
#pragma once

#include <cstdint>
#include <string_view>

namespace stf::tee {

class MemoryEnv {
 public:
  virtual ~MemoryEnv() = default;

  /// Registers a buffer of `bytes`; returns a region handle.
  virtual std::uint64_t alloc(std::string_view label, std::uint64_t bytes) = 0;

  /// Releases a region handle obtained from alloc().
  virtual void release(std::uint64_t region) = 0;

  /// Reports an access to [offset, offset+len) of a region.
  virtual void access(std::uint64_t region, std::uint64_t offset,
                      std::uint64_t len, bool write) = 0;

  /// Reports `flops` floating-point operations of compute.
  virtual void compute(double flops) = 0;

  /// Reports `ops` int8 integer operations (MACs + requantization, see
  /// docs/QUANTIZATION.md). The default treats them as float ops so
  /// environments without an int8 cost model stay correct.
  virtual void compute_int8(double ops) { compute(ops); }

  // --- Slalom GPU offload (docs/GPU_OFFLOAD.md) --------------------------
  // Defaults are no-ops: environments without an accelerator cost model
  // (plain test fakes) never bill offloaded work. Platform environments
  // charge the cost model's GPU/PCIe rates under profile.gpu/profile.pcie —
  // no enclave runtime overhead, no MEE traffic: the work happens outside
  // the TEE, which is the whole point of offloading.

  /// Reports `flops` executed on the untrusted accelerator.
  virtual void gpu_compute(double flops) { (void)flops; }

  /// Reports `bytes` moved across the host<->GPU interconnect.
  virtual void pcie_transfer(std::uint64_t bytes) { (void)bytes; }

  // --- EPC-aware streaming hints (docs/MEMORY_PLANNER.md) ----------------
  // Default no-ops: environments without an EPC boundary (native DRAM, SIM
  // mode) ignore residency hints, so planner/streaming code never needs to
  // know where it runs.

  /// Hints that [offset, offset+len) will be read soon; an enclave
  /// environment faults those pages in ahead of use at overlapped cost.
  virtual void prefetch(std::uint64_t region, std::uint64_t offset,
                        std::uint64_t len) {
    (void)region;
    (void)offset;
    (void)len;
  }

  /// Hints that [offset, offset+len) will not be reused soon; an enclave
  /// environment evicts those pages off the critical path.
  virtual void advise_evict(std::uint64_t region, std::uint64_t offset,
                            std::uint64_t len) {
    (void)region;
    (void)offset;
    (void)len;
  }

  /// Exempts / re-admits a region's pages from victim selection.
  virtual void pin(std::uint64_t region) { (void)region; }
  virtual void unpin(std::uint64_t region) { (void)region; }

  /// Current virtual time of the clock this environment charges into, for
  /// observability (span endpoints). Environments without a clock return 0;
  /// callers must treat 0-duration spans as "no timing available" and skip
  /// recording them.
  [[nodiscard]] virtual std::uint64_t now_ns() const { return 0; }
};

/// Environment used by native (untrusted) execution: charges baseline
/// compute/DRAM cost into a clock but has no enclave semantics.
class NativeEnv;

}  // namespace stf::tee
