#include "faults/fault_plane.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/names.h"

namespace stf::faults {

namespace {

struct FaultObs {
  obs::Counter& messages_seen = obs::Registry::global().counter(
      obs::names::kFaultsMessagesSeen, "messages inspected by the plane");
  obs::Counter& dropped = obs::Registry::global().counter(
      obs::names::kFaultsDropped, "messages dropped by link weather");
  obs::Counter& duplicated = obs::Registry::global().counter(
      obs::names::kFaultsDuplicated, "messages duplicated by link weather");
  obs::Counter& delayed = obs::Registry::global().counter(
      obs::names::kFaultsDelayed, "messages delayed by link weather");
  obs::Counter& crash_dropped = obs::Registry::global().counter(
      obs::names::kFaultsCrashDropped,
      "messages lost to scheduled crash windows");
  obs::Counter& io_failures = obs::Registry::global().counter(
      obs::names::kFaultsIoFailures, "injected untrusted-fs I/O failures");
};

FaultObs& fault_obs() {
  static FaultObs* o = new FaultObs();
  return *o;
}
std::uint64_t link_key(net::NodeId a, net::NodeId b) {
  if (a > b) std::swap(a, b);
  return (std::uint64_t{a} << 32) | b;
}

crypto::Bytes seed_bytes(std::uint64_t seed) {
  crypto::Bytes s = crypto::to_bytes("stf-fault-plane-");
  std::uint8_t sb[8];
  crypto::store_be64(sb, seed);
  crypto::append(s, crypto::BytesView(sb, 8));
  return s;
}
}  // namespace

FaultPlane::FaultPlane(std::uint64_t seed) : drbg_(seed_bytes(seed)) {}

void FaultPlane::set_link_faults(net::NodeId a, net::NodeId b,
                                 LinkFaultSpec spec) {
  link_specs_[link_key(a, b)] = spec;
}

void FaultPlane::schedule_crash(net::NodeId node, std::uint64_t down_ns,
                                std::uint64_t up_ns) {
  if (up_ns <= down_ns) {
    throw std::invalid_argument("FaultPlane: empty crash window");
  }
  crash_windows_[node].push_back({down_ns, up_ns});
}

void FaultPlane::schedule_gpu_corruption(net::NodeId node,
                                         std::uint64_t from_ns,
                                         std::uint64_t to_ns) {
  if (to_ns <= from_ns) {
    throw std::invalid_argument("FaultPlane: empty gpu corruption window");
  }
  gpu_corruption_windows_[node].push_back({from_ns, to_ns});
}

bool FaultPlane::gpu_corrupt(net::NodeId node, std::uint64_t now_ns) {
  const auto it = gpu_corruption_windows_.find(node);
  if (it == gpu_corruption_windows_.end()) return false;
  for (const auto& w : it->second) {
    if (now_ns >= w.down_ns && now_ns < w.up_ns) {
      ++stats_.gpu_corruptions;
      return true;
    }
  }
  return false;
}

void FaultPlane::set_node_throttle(net::NodeId node, std::uint64_t extra_ns) {
  throttles_[node] = extra_ns;
}

void FaultPlane::attach(net::SimNetwork& net) {
  net_ = &net;
  net.set_fault_hook([this](net::NodeId from, net::NodeId to,
                            std::uint64_t now_ns,
                            const crypto::Bytes& payload) {
    return on_message(from, to, now_ns, payload);
  });
}

void FaultPlane::attach_fs(runtime::UntrustedFs& fs) {
  fs.set_fault_injector(
      [this](const char*, const std::string&) { return io_should_fail(); });
}

void FaultPlane::crash_now(net::NodeId node) {
  if (net_ == nullptr) {
    throw std::logic_error("FaultPlane: crash_now before attach");
  }
  net_->kill_node(node);
}

void FaultPlane::revive_now(net::NodeId node) {
  if (net_ == nullptr) {
    throw std::logic_error("FaultPlane: revive_now before attach");
  }
  net_->revive_node(node);
}

const LinkFaultSpec& FaultPlane::spec_for(net::NodeId a, net::NodeId b) const {
  const auto it = link_specs_.find(link_key(a, b));
  return it != link_specs_.end() ? it->second : default_spec_;
}

std::optional<std::uint64_t> FaultPlane::next_crash_after(
    net::NodeId node, std::uint64_t after_ns) const {
  const auto it = crash_windows_.find(node);
  if (it == crash_windows_.end()) return std::nullopt;
  std::optional<std::uint64_t> earliest;
  for (const auto& w : it->second) {
    if (w.down_ns > after_ns && (!earliest || w.down_ns < *earliest)) {
      earliest = w.down_ns;
    }
  }
  return earliest;
}

bool FaultPlane::in_crash_window(net::NodeId node, std::uint64_t now_ns) const {
  const auto it = crash_windows_.find(node);
  if (it == crash_windows_.end()) return false;
  for (const auto& w : it->second) {
    if (now_ns >= w.down_ns && now_ns < w.up_ns) return true;
  }
  return false;
}

double FaultPlane::draw() {
  // 30 bits of the stream -> uniform double in [0, 1). Plenty for fault
  // probabilities, and one cheap draw per decision keeps the schedule
  // stable when unrelated config changes.
  constexpr std::uint64_t kBits = std::uint64_t{1} << 30;
  return static_cast<double>(drbg_.uniform(kBits)) /
         static_cast<double>(kBits);
}

net::FaultDecision FaultPlane::on_message(net::NodeId from, net::NodeId to,
                                          std::uint64_t now_ns,
                                          const crypto::Bytes&) {
  ++stats_.messages_seen;
  fault_obs().messages_seen.add();
  net::FaultDecision decision;

  if (in_crash_window(from, now_ns) || in_crash_window(to, now_ns)) {
    ++stats_.crash_dropped;
    fault_obs().crash_dropped.add();
    decision.drop = true;
    return decision;
  }

  const auto ft = throttles_.find(from);
  if (ft != throttles_.end()) decision.extra_delay_ns += ft->second;
  const auto tt = throttles_.find(to);
  if (tt != throttles_.end()) decision.extra_delay_ns += tt->second;

  const LinkFaultSpec& spec = spec_for(from, to);
  if (!spec.any()) return decision;

  // One draw decides: [0,drop) -> drop, [drop,drop+dup) -> duplicate,
  // [drop+dup, drop+dup+delay) -> delay, rest -> clean.
  const double u = draw();
  if (u < spec.drop_prob) {
    ++stats_.dropped;
    fault_obs().dropped.add();
    decision.drop = true;
  } else if (u < spec.drop_prob + spec.duplicate_prob) {
    ++stats_.duplicated;
    fault_obs().duplicated.add();
    decision.copies = 2;
  } else if (u < spec.drop_prob + spec.duplicate_prob + spec.delay_prob) {
    ++stats_.delayed;
    fault_obs().delayed.add();
    decision.extra_delay_ns += spec.delay_ns;
  }
  return decision;
}

bool FaultPlane::io_should_fail() {
  if (io_fail_prob_ <= 0) return false;
  if (draw() < io_fail_prob_) {
    ++stats_.io_failures;
    fault_obs().io_failures.add();
    return true;
  }
  return false;
}

}  // namespace stf::faults
