// Deterministic fault injection for the simulated cluster.
//
// The Dolev-Yao adversary (net/network.h) models *attacks*; this plane
// models *weather* — the packet loss, duplication, congestion delay, node
// crashes and host I/O hiccups that the paper's untrusted cloud exhibits
// even when nobody is attacking (challenge 4: workers crash, rejoin, and
// re-attest; Figures 7-8 assume nodes and links that stall mid-stream).
//
// Every decision draws from one HMAC-DRBG stream seeded by the caller, and
// all deadlines live in virtual time, so a run with a fixed fault seed is
// bit-reproducible: same drops, same retries, same ejections, same totals.
// Stress-SGX (PAPERS.md) validates enclave stacks the same way — injected
// failures with a controlled schedule.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/drbg.h"
#include "net/network.h"
#include "runtime/untrusted_fs.h"

namespace stf::faults {

/// Per-link message weather. Probabilities are evaluated against one DRBG
/// draw per message in send order (drop wins over duplicate wins over
/// delay), so their sum must stay <= 1.
struct LinkFaultSpec {
  double drop_prob = 0;
  double duplicate_prob = 0;
  double delay_prob = 0;
  std::uint64_t delay_ns = 2'000'000;  ///< extra latency when delayed

  [[nodiscard]] bool any() const {
    return drop_prob > 0 || duplicate_prob > 0 || delay_prob > 0;
  }
};

/// Counters of everything the plane injected (deterministic for a seed).
struct FaultStats {
  std::uint64_t messages_seen = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t crash_dropped = 0;  ///< lost inside a crash window
  std::uint64_t io_failures = 0;
  std::uint64_t gpu_corruptions = 0;  ///< GPU results flipped in a window
};

class FaultPlane {
 public:
  explicit FaultPlane(std::uint64_t seed);

  // --- configuration (set before or between runs) ------------------------

  /// Weather applied to every link without a per-link override.
  void set_default_link_faults(LinkFaultSpec spec) { default_spec_ = spec; }

  /// Weather for the specific link a<->b (both directions).
  void set_link_faults(net::NodeId a, net::NodeId b, LinkFaultSpec spec);

  /// Crash/restart schedule in virtual time: while the *sender's* clock is
  /// inside [down_ns, up_ns), every message from or to `node` is lost (the
  /// process is down; it neither sends nor receives). Connections survive —
  /// this models a freeze-and-recover, not a reboot; use crash_now() for a
  /// crash that kills connection state.
  void schedule_crash(net::NodeId node, std::uint64_t down_ns,
                      std::uint64_t up_ns);

  /// Slow-node throttle: every message from or to `node` picks up
  /// `extra_ns` of latency (a straggling NIC/stack, not a dead one).
  void set_node_throttle(net::NodeId node, std::uint64_t extra_ns);

  /// Probability that one host filesystem operation fails transiently
  /// (attach_fs installs the injector; failures throw TransientError).
  void set_io_fault_prob(double prob) { io_fail_prob_ = prob; }

  /// Corrupting-GPU schedule (docs/GPU_OFFLOAD.md): while `node`'s clock is
  /// inside [from_ns, to_ns), the untrusted GPU attached to that node
  /// returns wrong results for offloaded layers. The serving layer polls
  /// gpu_corrupt() from its offload corruption hook and applies the actual
  /// tensor damage — the plane only owns the schedule, so faults:: stays
  /// free of ml:: types.
  void schedule_gpu_corruption(net::NodeId node, std::uint64_t from_ns,
                               std::uint64_t to_ns);

  // --- attachment ---------------------------------------------------------

  /// Installs the message-weather hook on `net`. The plane must outlive the
  /// network. Also enables crash_now()/revive_now() on it.
  void attach(net::SimNetwork& net);

  /// Installs the transient-I/O injector on a host filesystem. The plane
  /// must outlive the filesystem.
  void attach_fs(runtime::UntrustedFs& fs);

  // --- imperative crash control (connection-killing) ----------------------

  /// Crash-stops `node` on the attached network: its connections turn
  /// peer-dead and queued traffic to it is lost. Requires attach().
  void crash_now(net::NodeId node);

  /// Restarts a crash_now()'d node. Its old connections stay dead — the
  /// survivor must reconnect (and, in attested deployments, re-attest).
  void revive_now(net::NodeId node);

  // --- crash-schedule queries (mid-trace failover, docs/SERVING.md) -------

  /// True while `node` sits inside a scheduled crash window at `now_ns`.
  /// The serving fleet polls this at dispatch time to decide whether a
  /// probe finds the node dead.
  [[nodiscard]] bool node_down(net::NodeId node, std::uint64_t now_ns) const {
    return in_crash_window(node, now_ns);
  }

  /// Earliest scheduled crash-window start strictly after `after_ns`, or
  /// nullopt when none remains. Lets a dispatcher decide whether a batch
  /// launched at `after_ns` would be interrupted mid-service.
  [[nodiscard]] std::optional<std::uint64_t> next_crash_after(
      net::NodeId node, std::uint64_t after_ns) const;

  /// True while `node`'s GPU sits inside a scheduled corruption window at
  /// `now_ns`; each true counts one injected corruption in stats().
  [[nodiscard]] bool gpu_corrupt(net::NodeId node, std::uint64_t now_ns);

  [[nodiscard]] const FaultStats& stats() const { return stats_; }

 private:
  [[nodiscard]] net::FaultDecision on_message(net::NodeId from, net::NodeId to,
                                              std::uint64_t now_ns,
                                              const crypto::Bytes& payload);
  [[nodiscard]] bool io_should_fail();
  [[nodiscard]] const LinkFaultSpec& spec_for(net::NodeId a,
                                              net::NodeId b) const;
  [[nodiscard]] bool in_crash_window(net::NodeId node,
                                     std::uint64_t now_ns) const;
  /// One uniform draw in [0, 1) from the fault stream.
  [[nodiscard]] double draw();

  crypto::HmacDrbg drbg_;
  LinkFaultSpec default_spec_;
  std::map<std::uint64_t, LinkFaultSpec> link_specs_;  // key: a<<32|b, a<b
  struct CrashWindow {
    std::uint64_t down_ns = 0, up_ns = 0;
  };
  std::map<net::NodeId, std::vector<CrashWindow>> crash_windows_;
  std::map<net::NodeId, std::vector<CrashWindow>> gpu_corruption_windows_;
  std::map<net::NodeId, std::uint64_t> throttles_;
  double io_fail_prob_ = 0;
  net::SimNetwork* net_ = nullptr;
  FaultStats stats_;
};

}  // namespace stf::faults
