// Distributed training: TensorFlow-style parameter server + workers (§3.3.4).
//
// Synchronous data-parallel SGD: every round the parameter server pushes the
// current variables to each worker over the network shield, each worker
// computes gradients on its own batch inside its enclave, sends them back,
// and the server applies the averaged update. Worker enclaves carry the full
// TensorFlow image (87.4 MB in the paper) — which is why Hardware mode pays
// for EPC paging on every step (Figure 8's 14x) — and new workers join only
// after CAS attestation (elasticity, challenge 4).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cas/cas_server.h"
#include "faults/fault_plane.h"
#include "ml/dataset.h"
#include "ml/graph.h"
#include "ml/serialize.h"
#include "ml/session.h"
#include "net/network.h"
#include "runtime/resilient_channel.h"
#include "runtime/secure_channel.h"
#include "tee/platform.h"

namespace stf::distributed {

/// Fault injection + resilient RPC for the cluster's data plane. When
/// disabled the cluster runs the exact legacy happy path (all figure
/// benches stay byte-identical). When enabled, every PS<->worker link gets
/// the configured weather from a seeded FaultPlane, parameter/gradient
/// exchanges run over ResilientChannel (retry/backoff/dedup), a worker that
/// misses a round times out at the parameter server and the round completes
/// with the surviving gradients, and crashed workers are respawned and
/// re-attested through CAS before rejoining (the paper's elasticity story,
/// challenge 4).
struct ClusterFaultConfig {
  bool enabled = false;
  /// Weather on each PS<->worker link (the control plane — CAS attestation
  /// and channel handshakes — is modeled reliable).
  faults::LinkFaultSpec link;
  runtime::RetryPolicy retry;
  /// How long the PS waits on a missing gradient before completing the
  /// round without it.
  std::uint64_t round_timeout_ns = 50'000'000;
  std::uint64_t seed = 7;
};

struct ClusterConfig {
  unsigned num_workers = 1;
  tee::TeeMode mode = tee::TeeMode::Hardware;
  bool network_shield = true;
  /// Asynchronous parameter-server updates: each worker pulls the latest
  /// parameters and the server applies its gradient on arrival, no round
  /// barrier. Tolerates stragglers at the cost of gradient staleness.
  bool async_updates = false;
  /// Per-worker relative compute speed (1.0 = nominal); shorter than the
  /// fleet means trailing workers run at nominal speed. Models stragglers.
  std::vector<double> worker_speed_factors;
  tee::CostModel model;
  std::int64_t batch_size = 100;     ///< per worker, as in §5.4
  float learning_rate = 5e-4f;
  /// EPC footprint of the full-TensorFlow worker image (87.4 MB, §5.3 #4).
  std::uint64_t worker_binary_bytes = 87'400'000;
  /// Framework heap/temporaries touched every step (allocator arenas,
  /// interpreter state); pushes the HW working set past the EPC.
  std::uint64_t framework_scratch_bytes = 24ull << 20;
  std::uint64_t seed = 42;
  ClusterFaultConfig faults;
};

struct TrainStats {
  float final_loss = 0;
  double total_seconds = 0;          ///< virtual wall time of the whole run
  double seconds_per_round = 0;
  std::uint64_t rounds = 0;
  std::uint64_t samples_processed = 0;
  std::uint64_t epc_faults = 0;      ///< summed over workers (HW mode)
  // Resilience telemetry (all zero on the happy path; deterministic for a
  // fixed fault seed).
  std::uint64_t worker_crashes = 0;   ///< scheduled mid-round crash-stops
  std::uint64_t degraded_rounds = 0;  ///< rounds finished with gradients missing
  std::uint64_t lost_gradients = 0;   ///< worker-rounds that never reached the PS
  std::uint64_t retransmits = 0;      ///< resilient-RPC retransmissions
};

class TrainingCluster {
 public:
  /// If `cas` is non-null, every worker attests against policy
  /// `session_name` before joining; unattested workers are refused.
  TrainingCluster(const ml::Graph& graph, ClusterConfig config,
                  cas::CasServer* cas = nullptr,
                  tee::ProvisioningAuthority* authority = nullptr,
                  std::string session_name = "training");

  /// Runs data-parallel SGD over `total_samples` of `data` — synchronous
  /// rounds by default, asynchronous updates if the config says so.
  TrainStats train(const ml::Dataset& data, std::int64_t total_samples);

  /// Elastic scale-out: adds (and, with CAS, attests) one more worker.
  void add_worker();

  /// Fault injection: kills worker `index`; the next train() call respawns
  /// and re-attests a replacement automatically.
  void fail_worker(std::size_t index);

  /// Schedules worker `index` to crash-stop during synchronous round
  /// `round` (0-based) of the next train() run — after it received the
  /// round's parameters, before its gradient reaches the PS. The round
  /// times out at the server and completes with the surviving gradients;
  /// the replacement re-attests through CAS before the next round. Only
  /// meaningful with config.faults.enabled (throws std::logic_error
  /// otherwise: the legacy happy path has no timeout to save the round).
  void schedule_worker_crash(std::size_t index, std::uint64_t round);

  /// Fault-plane telemetry (zeroed stats when faults are disabled).
  [[nodiscard]] const faults::FaultStats& fault_stats() const;

  [[nodiscard]] ml::Session& master_session() { return *master_session_; }
  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }
  [[nodiscard]] unsigned attested_workers() const { return attested_; }

 private:
  struct WorkerState {
    std::unique_ptr<tee::Platform> platform;
    std::unique_ptr<tee::Enclave> enclave;        // SIM/HW modes
    std::unique_ptr<tee::EnclaveEnv> enclave_env;
    std::unique_ptr<tee::NativeEnv> native_env;   // Native mode
    std::unique_ptr<ml::Session> session;
    std::unique_ptr<tee::RegionId> scratch;       // framework temporaries
    net::NodeId node = 0;
    // Towards the parameter server:
    net::Connection plain_to_ps, ps_plain;        // no-shield path
    runtime::SecureChannel to_ps, ps_to;          // shield path
    runtime::ResilientChannel r_to_ps, r_ps_to;   // faults-enabled path
    bool alive = true;
  };

  void spawn_worker();
  void ensure_workers_alive();
  TrainStats train_async(const ml::Dataset& data, std::int64_t total_samples);
  TrainStats train_resilient(const ml::Dataset& data,
                             std::int64_t total_samples);
  [[nodiscard]] tee::MemoryEnv* env_of(WorkerState& w);

  ml::Graph graph_;
  ClusterConfig config_;
  cas::CasServer* cas_;
  tee::ProvisioningAuthority* authority_;
  std::string session_name_;
  crypto::HmacDrbg rng_;

  net::SimNetwork net_;
  std::unique_ptr<tee::Platform> ps_platform_;
  std::unique_ptr<tee::Enclave> ps_enclave_;
  std::unique_ptr<tee::EnclaveEnv> ps_env_;
  std::unique_ptr<tee::NativeEnv> ps_native_env_;
  std::unique_ptr<ml::Session> master_session_;
  net::NodeId ps_node_ = 0;
  std::vector<WorkerState> workers_;
  unsigned attested_ = 0;
  unsigned worker_serial_ = 0;

  // Resilience plumbing (engaged only when config_.faults.enabled).
  std::unique_ptr<faults::FaultPlane> fault_plane_;
  std::map<std::uint64_t, std::vector<std::size_t>> crash_schedule_;
  std::uint64_t retransmits_carried_ = 0;  ///< telemetry of dead workers
};

}  // namespace stf::distributed
