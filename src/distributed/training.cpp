#include "distributed/training.h"

#include <algorithm>
#include <stdexcept>

#include "cas/attest_client.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/profile.h"
#include "obs/span.h"
#include "runtime/shielded_link.h"

namespace stf::distributed {
namespace {

struct TrainObs {
  obs::Counter& rounds = obs::Registry::global().counter(
      obs::names::kTrainRounds, "synchronous training rounds completed");
  obs::Counter& degraded_rounds = obs::Registry::global().counter(
      obs::names::kTrainDegradedRounds, "rounds that hit the round timeout");
  obs::Counter& lost_gradients = obs::Registry::global().counter(
      obs::names::kTrainLostGradients, "gradients lost past the retry budget");
  obs::Counter& worker_crashes = obs::Registry::global().counter(
      obs::names::kTrainWorkerCrashes, "worker crash-stops injected");
  obs::Counter& samples_processed = obs::Registry::global().counter(
      obs::names::kTrainSamplesProcessed, "training samples consumed");
  obs::Histogram& round_ns = obs::Registry::global().histogram(
      obs::names::kTrainRoundNs, obs::latency_edges_ns(),
      "per-round virtual latency on the parameter server");
  obs::QuantileSeries& round_quantile_ns = obs::Registry::global().quantiles(
      obs::names::kTrainRoundQuantileNs,
      "exact p50/p95/p99 of per-round latency on the parameter server");
  std::uint32_t round_span =
      obs::SpanTracer::global().intern(obs::names::kSpanTrainRound);
};

TrainObs& train_obs() {
  static TrainObs* o = new TrainObs();
  return *o;
}

tee::EnclaveImage worker_image(const ClusterConfig& cfg, unsigned serial) {
  return tee::EnclaveImage{
      .name = "tf-worker-" + std::to_string(serial),
      .content = crypto::to_bytes("stf-full-tensorflow-worker-v1"),
      .binary_bytes = cfg.worker_binary_bytes,
  };
}

}  // namespace

TrainingCluster::TrainingCluster(const ml::Graph& graph, ClusterConfig config,
                                 cas::CasServer* cas,
                                 tee::ProvisioningAuthority* authority,
                                 std::string session_name)
    : graph_(graph),
      config_(std::move(config)),
      cas_(cas),
      authority_(authority),
      session_name_(std::move(session_name)),
      rng_(crypto::to_bytes("cluster-" + std::to_string(config_.seed))) {
  if (config_.faults.enabled) {
    if (!config_.network_shield) {
      throw std::invalid_argument(
          "cluster faults: resilient RPC rides on the network shield");
    }
    if (config_.async_updates) {
      throw std::invalid_argument(
          "cluster faults: only synchronous rounds have the round-timeout "
          "semantics fault injection needs");
    }
    // Attached before any link exists; per-link weather is configured in
    // spawn_worker() *after* the shielded handshake and CAS attestation, so
    // the control plane stays reliable and only the data plane gets weather.
    fault_plane_ = std::make_unique<faults::FaultPlane>(config_.faults.seed);
    fault_plane_->attach(net_);
  }
  // Parameter server node.
  if (authority_ != nullptr) {
    ps_platform_ = std::make_unique<tee::Platform>(
        "ps", config_.mode, config_.model, *authority_);
  } else {
    ps_platform_ = std::make_unique<tee::Platform>("ps", config_.mode,
                                                   config_.model);
  }
  ps_node_ = net_.add_node("ps", ps_platform_->base_clock());
  tee::MemoryEnv* ps_env = nullptr;
  if (config_.mode == tee::TeeMode::Native) {
    ps_native_env_ = std::make_unique<tee::NativeEnv>(
        config_.model, ps_platform_->base_clock());
    ps_env = ps_native_env_.get();
  } else {
    ps_enclave_ = ps_platform_->launch_enclave(worker_image(config_, 9999));
    ps_enclave_->set_runtime_overhead(config_.model.runtime_overhead_training);
    ps_env_ = std::make_unique<tee::EnclaveEnv>(*ps_enclave_);
    ps_env = ps_env_.get();
  }
  master_session_ = std::make_unique<ml::Session>(graph_, ps_env);

  // Register an attestation policy so spawned workers can join.
  if (cas_ != nullptr) {
    cas::EnclavePolicy policy;
    policy.expected_mrenclave = worker_image(config_, 0).measure();
    policy.secrets = {{"data-key", rng_.generate(32)}};
    cas_->register_policy(session_name_, policy);
  }

  for (unsigned i = 0; i < config_.num_workers; ++i) spawn_worker();
}

tee::MemoryEnv* TrainingCluster::env_of(WorkerState& w) {
  if (w.enclave_env) return w.enclave_env.get();
  return w.native_env.get();
}

void TrainingCluster::spawn_worker() {
  WorkerState w;
  const unsigned serial = worker_serial_++;
  const std::string name = "worker-" + std::to_string(serial);
  tee::CostModel worker_model = config_.model;
  if (serial < config_.worker_speed_factors.size()) {
    const double factor = config_.worker_speed_factors[serial];
    if (factor <= 0) {
      throw std::invalid_argument("worker speed factor must be positive");
    }
    worker_model.flops_per_second *= factor;  // straggler simulation
  }
  if (authority_ != nullptr) {
    w.platform = std::make_unique<tee::Platform>(name, config_.mode,
                                                 worker_model, *authority_);
  } else {
    w.platform = std::make_unique<tee::Platform>(name, config_.mode,
                                                 worker_model);
  }
  w.node = net_.add_node(name, w.platform->base_clock());

  tee::MemoryEnv* env = nullptr;
  if (config_.mode == tee::TeeMode::Native) {
    w.native_env = std::make_unique<tee::NativeEnv>(config_.model,
                                                    w.platform->base_clock());
    env = w.native_env.get();
  } else {
    // The worker image is the measured worker_image(cfg, 0) content for
    // every serial (same binary), so one CAS policy covers the fleet.
    tee::EnclaveImage image = worker_image(config_, 0);
    image.name = name;
    w.enclave = w.platform->launch_enclave(std::move(image));
    w.enclave->set_runtime_overhead(config_.model.runtime_overhead_training);
    w.enclave_env = std::make_unique<tee::EnclaveEnv>(*w.enclave);
    env = w.enclave_env.get();

    // Attestation gate: the worker only joins after CAS releases secrets.
    if (cas_ != nullptr) {
      const auto outcome =
          cas::attest_with_cas(*cas_, *w.platform, *w.enclave, net_, w.node,
                               net_.add_node(name + "-cas-link",
                                             cas_->platform().base_clock()),
                               rng_, session_name_);
      if (!outcome.ok) {
        throw std::runtime_error("worker attestation failed: " +
                                 outcome.error);
      }
      ++attested_;
    }

    // Framework temporaries region (allocator arenas etc.).
    w.scratch = std::make_unique<tee::RegionId>(w.enclave->alloc_region(
        "framework-scratch", config_.framework_scratch_bytes));
  }
  w.session = std::make_unique<ml::Session>(graph_, env);

  // Connection to the parameter server; shielded if configured.
  if (config_.network_shield) {
    auto link = runtime::ShieldedLink::establish(
        net_, w.node, ps_node_, config_.model, w.platform->base_clock(),
        ps_platform_->base_clock(), rng_);
    if (config_.faults.enabled) {
      // Wrap both directions in resilient framing, then turn the weather on
      // for this link only (the handshake above ran on clear skies).
      w.r_to_ps = runtime::ResilientChannel(
          std::move(link.a_to_b), w.platform->base_clock(),
          config_.faults.retry, config_.faults.seed ^ (2ull * serial + 1));
      w.r_ps_to = runtime::ResilientChannel(
          std::move(link.b_to_a), ps_platform_->base_clock(),
          config_.faults.retry, config_.faults.seed ^ (2ull * serial + 2));
      fault_plane_->set_link_faults(w.node, ps_node_, config_.faults.link);
    } else {
      w.to_ps = std::move(link.a_to_b);
      w.ps_to = std::move(link.b_to_a);
    }
  } else {
    auto [worker_side, ps_side] = net_.connect(w.node, ps_node_);
    w.plain_to_ps = worker_side;
    w.ps_plain = ps_side;
  }
  workers_.push_back(std::move(w));
}

void TrainingCluster::add_worker() { spawn_worker(); }

void TrainingCluster::fail_worker(std::size_t index) {
  workers_.at(index).alive = false;
}

void TrainingCluster::schedule_worker_crash(std::size_t index,
                                            std::uint64_t round) {
  if (!config_.faults.enabled) {
    throw std::logic_error(
        "schedule_worker_crash: enable config.faults first");
  }
  crash_schedule_[round].push_back(index);
}

const faults::FaultStats& TrainingCluster::fault_stats() const {
  static const faults::FaultStats kNone;
  return fault_plane_ ? fault_plane_->stats() : kNone;
}

void TrainingCluster::ensure_workers_alive() {
  // Rebuild by move-construction: move-assigning over a live WorkerState
  // would destroy its platform before the enclave that references it.
  const auto dead = std::count_if(workers_.begin(), workers_.end(),
                                  [](const WorkerState& w) { return !w.alive; });
  if (dead == 0) return;
  std::vector<WorkerState> alive;
  alive.reserve(workers_.size());
  for (auto& w : workers_) {
    if (w.alive) alive.push_back(std::move(w));
  }
  workers_ = std::move(alive);
  for (std::int64_t i = 0; i < dead; ++i) spawn_worker();
}

TrainStats TrainingCluster::train(const ml::Dataset& data,
                                  std::int64_t total_samples) {
  ensure_workers_alive();
  if (workers_.empty()) throw std::logic_error("no workers");
  if (config_.faults.enabled) return train_resilient(data, total_samples);
  if (config_.async_updates) return train_async(data, total_samples);
  const std::int64_t per_round =
      config_.batch_size * static_cast<std::int64_t>(workers_.size());
  if (total_samples % per_round != 0) {
    total_samples -= total_samples % per_round;  // whole rounds only
  }
  if (total_samples <= 0) {
    throw std::invalid_argument("train: need at least one full round");
  }
  const std::int64_t rounds = total_samples / per_round;

  // Barrier helper: align a set of clocks to the max.
  auto barrier = [this] {
    std::uint64_t t = ps_platform_->base_clock().now_ns();
    for (const auto& w : workers_) {
      t = std::max(t, w.platform->base_clock().now_ns());
    }
    ps_platform_->base_clock().advance_to(t);
    for (auto& w : workers_) w.platform->base_clock().advance_to(t);
    return t;
  };

  TrainStats stats;
  const std::uint64_t start_ns = barrier();
  std::int64_t next_batch = 0;
  const std::int64_t batches_available = data.size() / config_.batch_size;
  float loss_sum = 0;

  for (std::int64_t round = 0; round < rounds; ++round) {
    // Per-round cost attribution on the PS clock: category deltas plus the
    // warp term (shard-parallel set_ns rewinds) sum exactly to the round
    // span the tracer records below.
    obs::ScopedAttribution profile(ps_platform_->base_clock(),
                                   obs::names::kSpanTrainRound);
    const std::uint64_t round_start = ps_platform_->base_clock().now_ns();
    // 1. Server pushes current parameters to every worker. TensorFlow's
    //    parameter server shards push in parallel: the per-worker shield
    //    work overlaps, so the PS clock advances to the slowest push, not
    //    the sum.
    const auto params =
        ml::serialize_tensor_map(master_session_->variable_snapshot());
    {
      tee::SimClock& ps_clock = ps_platform_->base_clock();
      const std::uint64_t push_start = ps_clock.now_ns();
      std::uint64_t slowest = push_start;
      for (auto& w : workers_) {
        ps_clock.set_ns(push_start);  // each shard starts concurrently
        if (config_.network_shield) {
          w.ps_to.send(params);
        } else {
          w.ps_plain.send(params);
        }
        slowest = std::max(slowest, ps_clock.now_ns());
      }
      ps_clock.set_ns(slowest);
    }

    // 2. Workers compute gradients on their own shard, in parallel lanes.
    std::vector<crypto::Bytes> grad_msgs;
    for (auto& w : workers_) {
      // Worker-side spans/profiles land on the worker's own trace row.
      obs::ScopedLane lane_scope(static_cast<std::uint16_t>(w.node), 0);
      std::optional<crypto::Bytes> msg = config_.network_shield
                                             ? w.to_ps.recv()
                                             : w.plain_to_ps.recv();
      if (!msg.has_value()) throw std::runtime_error("lost parameter push");
      w.session->restore_variables(ml::deserialize_tensor_map(*msg));

      // One training step's framework activity: code+static data and
      // temporaries all get touched (this is what fights the EPC in HW).
      if (w.enclave) {
        w.enclave->touch_binary();
        w.enclave->access(*w.scratch, 0, config_.framework_scratch_bytes,
                          true);
      }

      const auto feeds =
          data.batch_feeds(next_batch % batches_available, config_.batch_size);
      next_batch = (next_batch + 1) % batches_available;
      const auto grads = w.session->gradients("loss", feeds);
      loss_sum += w.session->last_loss();

      const auto encoded = ml::serialize_tensor_map(grads);
      if (config_.network_shield) {
        w.to_ps.send(encoded);
      } else {
        w.plain_to_ps.send(encoded);
      }
    }

    // 3. Server gathers gradients (waiting for the slowest worker),
    //    averages, and applies.
    std::map<std::string, ml::Tensor> avg;
    for (auto& w : workers_) {
      std::optional<crypto::Bytes> msg =
          config_.network_shield ? w.ps_to.recv() : w.ps_plain.recv();
      if (!msg.has_value()) throw std::runtime_error("lost gradient push");
      auto grads = ml::deserialize_tensor_map(*msg);
      for (auto& [name, grad] : grads) {
        auto it = avg.find(name);
        if (it == avg.end()) {
          avg.emplace(name, std::move(grad));
        } else {
          for (std::int64_t i = 0; i < grad.size(); ++i) {
            it->second.at(i) += grad.at(i);
          }
        }
      }
    }
    const float scale = 1.0f / static_cast<float>(workers_.size());
    for (auto& [name, grad] : avg) {
      for (std::int64_t i = 0; i < grad.size(); ++i) grad.at(i) *= scale;
    }
    master_session_->apply_gradients(avg, config_.learning_rate);

    barrier();  // synchronous SGD: everyone waits for the round to finish
    stats.samples_processed += per_round;
    train_obs().rounds.add();
    train_obs().samples_processed.add(static_cast<std::uint64_t>(per_round));
    const std::uint64_t round_end = ps_platform_->base_clock().now_ns();
    train_obs().round_ns.observe(round_end - round_start);
    train_obs().round_quantile_ns.observe(round_end - round_start);
    obs::SpanTracer::global().record(train_obs().round_span, round_start,
                                     round_end);
  }

  const std::uint64_t end_ns = barrier();
  stats.rounds = static_cast<std::uint64_t>(rounds);
  stats.total_seconds = static_cast<double>(end_ns - start_ns) / 1e9;
  stats.seconds_per_round =
      stats.total_seconds / static_cast<double>(rounds);
  stats.final_loss =
      loss_sum / static_cast<float>(rounds * static_cast<std::int64_t>(
                                                 workers_.size()));
  for (const auto& w : workers_) {
    stats.epc_faults += w.platform->epc().stats().faults;
  }
  return stats;
}

// Synchronous rounds under injected faults: every parameter/gradient
// exchange runs over ResilientChannel (retry/backoff/dedup), a worker whose
// gradient never arrives costs the PS one round_timeout instead of a hang,
// the update averages over whatever arrived (scaled average), and crashed
// workers are respawned — re-attesting through CAS — before the next round.
// Everything downstream of the fixed fault seed is bit-reproducible.
TrainStats TrainingCluster::train_resilient(const ml::Dataset& data,
                                            std::int64_t total_samples) {
  const std::int64_t per_round =
      config_.batch_size * static_cast<std::int64_t>(workers_.size());
  if (total_samples % per_round != 0) {
    total_samples -= total_samples % per_round;  // whole rounds only
  }
  if (total_samples <= 0) {
    throw std::invalid_argument("train: need at least one full round");
  }
  const std::int64_t rounds = total_samples / per_round;

  // Barrier over the PS and whoever is still alive.
  auto barrier = [this] {
    std::uint64_t t = ps_platform_->base_clock().now_ns();
    for (const auto& w : workers_) {
      if (w.alive) t = std::max(t, w.platform->base_clock().now_ns());
    }
    ps_platform_->base_clock().advance_to(t);
    for (auto& w : workers_) {
      if (w.alive) w.platform->base_clock().advance_to(t);
    }
    return t;
  };

  TrainStats stats;
  const std::uint64_t start_ns = barrier();
  std::int64_t next_batch = 0;
  const std::int64_t batches_available = data.size() / config_.batch_size;
  float loss_sum = 0;
  std::uint64_t contributions = 0;
  tee::SimClock& ps_clock = ps_platform_->base_clock();

  for (std::int64_t round = 0; round < rounds; ++round) {
    // Same conservation contract as train(): categories + warp == round span.
    obs::ScopedAttribution profile(ps_clock, obs::names::kSpanTrainRound);
    const std::uint64_t round_start = ps_clock.now_ns();
    const auto params =
        ml::serialize_tensor_map(master_session_->variable_snapshot());

    // 1. Reliable parameter push, one PS shard per worker in parallel. A
    //    push the retry budget cannot save just sidelines that worker for
    //    the round.
    std::vector<bool> has_params(workers_.size(), false);
    {
      const std::uint64_t push_start = ps_clock.now_ns();
      std::uint64_t slowest = push_start;
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        WorkerState& w = workers_[i];
        ps_clock.set_ns(push_start);  // each shard starts concurrently
        try {
          const auto delivered =
              runtime::ResilientChannel::deliver(w.r_ps_to, w.r_to_ps, params);
          w.session->restore_variables(ml::deserialize_tensor_map(delivered));
          has_params[i] = true;
        } catch (const runtime::TransientError&) {
          // Delivery failed for the whole retry budget; sit this round out.
        }
        slowest = std::max(slowest, ps_clock.now_ns());
      }
      ps_clock.set_ns(slowest);
    }

    // 2. Surviving workers compute and ship gradients. Scheduled crashes
    //    strike here — parameters received, gradient never sent — the worst
    //    case for the server.
    const auto crash_it =
        crash_schedule_.find(static_cast<std::uint64_t>(round));
    auto crashes_now = [&](std::size_t i) {
      return crash_it != crash_schedule_.end() &&
             std::find(crash_it->second.begin(), crash_it->second.end(), i) !=
                 crash_it->second.end();
    };
    std::map<std::string, ml::Tensor> sum;
    std::uint64_t arrived = 0;
    const std::uint64_t expected = workers_.size();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      WorkerState& w = workers_[i];
      if (!has_params[i]) continue;
      obs::ScopedLane lane_scope(static_cast<std::uint16_t>(w.node), 0);
      if (w.enclave) {
        w.enclave->touch_binary();
        w.enclave->access(*w.scratch, 0, config_.framework_scratch_bytes,
                          true);
      }
      const auto feeds =
          data.batch_feeds(next_batch % batches_available, config_.batch_size);
      next_batch = (next_batch + 1) % batches_available;
      const auto grads = w.session->gradients("loss", feeds);

      if (crashes_now(i)) {
        // Crash-stop: the gradient dies with the worker. Its channel
        // telemetry is carried so stats.retransmits stays complete.
        retransmits_carried_ +=
            w.r_to_ps.retransmits() + w.r_ps_to.retransmits();
        w.alive = false;
        fault_plane_->crash_now(w.node);
        ++stats.worker_crashes;
        train_obs().worker_crashes.add();
        continue;
      }

      try {
        const auto delivered = runtime::ResilientChannel::deliver(
            w.r_to_ps, w.r_ps_to, ml::serialize_tensor_map(grads));
        loss_sum += w.session->last_loss();
        ++contributions;
        ++arrived;
        stats.samples_processed += config_.batch_size;
        train_obs().samples_processed.add(
            static_cast<std::uint64_t>(config_.batch_size));
        auto got = ml::deserialize_tensor_map(delivered);
        for (auto& [name, grad] : got) {
          auto it = sum.find(name);
          if (it == sum.end()) {
            sum.emplace(name, std::move(grad));
          } else {
            for (std::int64_t j = 0; j < grad.size(); ++j) {
              it->second.at(j) += grad.at(j);
            }
          }
        }
      } catch (const runtime::TransientError&) {
        // Gradient lost past the retry budget; the PS will time it out.
      }
    }

    // 3. Anything missing costs the PS exactly one round timeout; the
    //    update is the scaled average over what arrived.
    if (arrived < expected) {
      {
        // Waiting out the round timeout is fault-recovery time, not compute.
        obs::ScopedCategory attribution(obs::Category::kFaultDelay);
        ps_clock.advance(config_.faults.round_timeout_ns);
      }
      ++stats.degraded_rounds;
      train_obs().degraded_rounds.add();
      stats.lost_gradients += expected - arrived;
      train_obs().lost_gradients.add(expected - arrived);
    }
    if (arrived > 0) {
      const float scale = 1.0f / static_cast<float>(arrived);
      for (auto& [name, grad] : sum) {
        for (std::int64_t j = 0; j < grad.size(); ++j) grad.at(j) *= scale;
      }
      master_session_->apply_gradients(sum, config_.learning_rate);
    }

    barrier();  // synchronous SGD: survivors wait for the round to finish
    // 4. Rejoin: replacements spawn and re-attest through CAS before the
    //    next round's parameters are released to them.
    ensure_workers_alive();
    stats.rounds += 1;
    train_obs().rounds.add();
    const std::uint64_t round_end = ps_clock.now_ns();
    train_obs().round_ns.observe(round_end - round_start);
    train_obs().round_quantile_ns.observe(round_end - round_start);
    obs::SpanTracer::global().record(train_obs().round_span, round_start,
                                     round_end);
  }

  const std::uint64_t end_ns = barrier();
  stats.total_seconds = static_cast<double>(end_ns - start_ns) / 1e9;
  stats.seconds_per_round =
      stats.total_seconds / static_cast<double>(rounds);
  stats.final_loss = contributions > 0
                         ? loss_sum / static_cast<float>(contributions)
                         : 0.0f;
  stats.retransmits = retransmits_carried_;
  for (const auto& w : workers_) {
    stats.epc_faults += w.platform->epc().stats().faults;
    stats.retransmits += w.r_to_ps.retransmits() + w.r_ps_to.retransmits();
  }
  return stats;
}

}  // namespace stf::distributed

namespace stf::distributed {

// Asynchronous parameter serving: a small discrete-event loop. The worker
// whose virtual clock is furthest behind takes the next step: it pulls the
// *current* parameters, computes a gradient on its own batch, and the server
// applies it on arrival. No barriers — a straggler only slows its own
// updates, not the fleet (at the cost of applying stale gradients).
TrainStats TrainingCluster::train_async(const ml::Dataset& data,
                                        std::int64_t total_samples) {
  if (total_samples < config_.batch_size) {
    throw std::invalid_argument("train: need at least one full batch");
  }
  const std::int64_t steps = total_samples / config_.batch_size;
  const std::int64_t batches_available = data.size() / config_.batch_size;
  tee::SimClock& ps_clock = ps_platform_->base_clock();

  TrainStats stats;
  std::uint64_t start_ns = ps_clock.now_ns();
  for (const auto& w : workers_) {
    start_ns = std::max(start_ns, w.platform->base_clock().now_ns());
  }
  ps_clock.advance_to(start_ns);
  for (auto& w : workers_) w.platform->base_clock().advance_to(start_ns);

  float loss_sum = 0;
  std::int64_t next_batch = 0;
  // The PS is sharded: channel crypto and parameter serving run on
  // per-worker shard threads (concurrent); only the variable update itself
  // is a serial pipeline.
  std::uint64_t apply_pipeline_ns = ps_clock.now_ns();
  for (std::int64_t step = 0; step < steps; ++step) {
    // Earliest-clock worker takes the next step.
    std::size_t wi = 0;
    for (std::size_t i = 1; i < workers_.size(); ++i) {
      if (workers_[i].platform->base_clock().now_ns() <
          workers_[wi].platform->base_clock().now_ns()) {
        wi = i;
      }
    }
    WorkerState& w = workers_[wi];

    // Pull: this worker's PS shard serves the *currently applied* parameters
    // the moment the request arrives — asynchronous serving never waits for
    // outstanding gradients (that is the whole point; the worker accepts
    // staleness).
    ps_clock.set_ns(w.platform->base_clock().now_ns());
    const auto params =
        ml::serialize_tensor_map(master_session_->variable_snapshot());
    if (config_.network_shield) {
      w.ps_to.send(params);
    } else {
      w.ps_plain.send(params);
    }
    auto msg = config_.network_shield ? w.to_ps.recv() : w.plain_to_ps.recv();
    if (!msg.has_value()) throw std::runtime_error("lost parameter pull");
    w.session->restore_variables(ml::deserialize_tensor_map(*msg));

    if (w.enclave) {
      w.enclave->touch_binary();
      w.enclave->access(*w.scratch, 0, config_.framework_scratch_bytes, true);
    }
    const auto feeds =
        data.batch_feeds(next_batch % batches_available, config_.batch_size);
    next_batch = (next_batch + 1) % batches_available;
    const auto grads = w.session->gradients("loss", feeds);
    loss_sum += w.session->last_loss();

    const auto encoded = ml::serialize_tensor_map(grads);
    if (config_.network_shield) {
      w.to_ps.send(encoded);
    } else {
      w.plain_to_ps.send(encoded);
    }
    // Gradient reception + record crypto happen on this worker's shard
    // thread: rewind the PS clock so the work is charged from the arrival
    // time, concurrently with other shards.
    ps_clock.set_ns(0);
    auto grad_msg = config_.network_shield ? w.ps_to.recv() : w.ps_plain.recv();
    if (!grad_msg.has_value()) throw std::runtime_error("lost gradient push");
    // Only the variable update itself serializes on the apply pipeline.
    ps_clock.advance_to(apply_pipeline_ns);
    master_session_->apply_gradients(ml::deserialize_tensor_map(*grad_msg),
                                     config_.learning_rate);
    apply_pipeline_ns = ps_clock.now_ns();
    stats.samples_processed += config_.batch_size;
  }

  std::uint64_t end_ns = std::max(ps_clock.now_ns(), apply_pipeline_ns);
  for (const auto& w : workers_) {
    end_ns = std::max(end_ns, w.platform->base_clock().now_ns());
  }
  stats.rounds = static_cast<std::uint64_t>(steps);
  stats.total_seconds = static_cast<double>(end_ns - start_ns) / 1e9;
  stats.seconds_per_round = stats.total_seconds / static_cast<double>(steps);
  stats.final_loss = loss_sum / static_cast<float>(steps);
  for (const auto& w : workers_) {
    stats.epc_faults += w.platform->epc().stats().faults;
  }
  return stats;
}

}  // namespace stf::distributed
