// Simulated cluster network.
//
// Models the paper's testbed interconnect (1 Gb/s switched LAN between the
// three SGX servers) plus the WAN path to the Intel Attestation Service.
// Latency and bandwidth are charged in virtual time against the endpoint
// clocks, so multi-node experiments (Figures 4, 7, 8) measure communication
// exactly where the real system would.
//
// The network is untrusted (Dolev-Yao, §2.3): an adversary hook can drop,
// tamper with, replay or delay any message in flight. Security tests use it
// to show that the network shield detects every manipulation.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/bytes.h"
#include "tee/cost_model.h"
#include "tee/sim_clock.h"

namespace stf::net {

using NodeId = std::uint32_t;

/// Link characteristics between a pair of nodes.
struct LinkSpec {
  double bandwidth = 125e6;           ///< bytes/s (default: 1 Gb/s LAN)
  std::uint64_t rtt_ns = 200'000;     ///< round-trip time

  [[nodiscard]] std::uint64_t transfer_ns(std::uint64_t bytes) const {
    return rtt_ns / 2 + static_cast<std::uint64_t>(
                            static_cast<double>(bytes) / bandwidth * 1e9);
  }
  static LinkSpec lan() { return {}; }
  static LinkSpec wan() { return {.bandwidth = 12.5e6, .rtt_ns = 18'000'000}; }
};

/// What the Dolev-Yao adversary does to one in-flight message. On Tamper the
/// hook has already mutated the payload; Replay delivers the message twice.
enum class AdversaryAction : std::uint8_t { Pass, Drop, Tamper, Replay, Delay };

/// Adversary hook: may inspect/mutate the payload and return an action.
using Adversary = std::function<AdversaryAction(crypto::Bytes& payload)>;

/// What the (non-malicious) fault plane does to one in-flight message. The
/// adversary models attacks; this models weather — packet loss, router
/// duplication, congestion delay — injected deterministically by
/// `stf::faults::FaultPlane`.
struct FaultDecision {
  bool drop = false;
  std::uint64_t extra_delay_ns = 0;  ///< added on top of the link latency
  unsigned copies = 1;               ///< >1 duplicates the message in flight
};

/// Fault hook: consulted for every message after the adversary. `now_ns` is
/// the sender's virtual clock (crash windows are evaluated against it).
using FaultHook = std::function<FaultDecision(
    NodeId from, NodeId to, std::uint64_t now_ns, const crypto::Bytes&)>;

class SimNetwork;

/// One side of an established connection. Move-only handle.
class Connection {
 public:
  Connection() = default;

  /// Sends `payload` to the peer; charges serialization + link cost to the
  /// sender's clock and stamps the arrival time.
  void send(crypto::BytesView payload);

  /// Receives the next in-order message. Advances the receiver's clock to
  /// the arrival time (waiting is part of the latency). Returns std::nullopt
  /// if nothing is (or will be) in flight — with a Dolev-Yao adversary a
  /// message can simply be gone.
  std::optional<crypto::Bytes> recv();

  /// Messages currently queued for this side.
  [[nodiscard]] std::size_t pending() const;

  /// True once the connection is dead: explicitly closed by either side, or
  /// the remote node crashed. Queued messages can still be drained; after
  /// that recv() will never again return data — stop polling.
  [[nodiscard]] bool peer_closed() const;

  /// Half-close from this side; the peer observes peer_closed(). Subsequent
  /// sends on either side vanish (TCP-RST-style).
  void close();

  [[nodiscard]] bool valid() const { return network_ != nullptr; }
  [[nodiscard]] NodeId local_node() const { return local_; }
  [[nodiscard]] NodeId remote_node() const { return remote_; }

 private:
  friend class SimNetwork;
  Connection(SimNetwork* network, std::uint64_t conn_id, bool side,
             NodeId local, NodeId remote)
      : network_(network), conn_id_(conn_id), side_(side), local_(local),
        remote_(remote) {}

  SimNetwork* network_ = nullptr;
  std::uint64_t conn_id_ = 0;
  bool side_ = false;  // false = dialer, true = listener
  NodeId local_ = 0;
  NodeId remote_ = 0;
};

class SimNetwork {
 public:
  /// Adds a node whose time is tracked by `clock` (usually a Platform's).
  NodeId add_node(std::string name, tee::SimClock& clock);

  /// Overrides the link between two nodes (default is LAN both ways).
  void set_link(NodeId a, NodeId b, LinkSpec spec);

  /// Installs/removes the Dolev-Yao adversary applied to every message.
  void set_adversary(Adversary adversary) { adversary_ = std::move(adversary); }

  /// Installs/removes the fault-injection hook (see stf::faults). Runs after
  /// the adversary on every message that survives it.
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  /// Crash-stops a node: every connection touching it turns peer-dead,
  /// undelivered messages addressed to it are lost, and further traffic
  /// from/to it vanishes until revive_node().
  void kill_node(NodeId id);

  /// Brings a crashed node back. Existing connections stay dead (the crash
  /// lost their state) — survivors must reconnect.
  void revive_node(NodeId id);

  [[nodiscard]] bool node_down(NodeId id) const {
    return nodes_.at(id).down;
  }

  /// Opens a bidirectional connection between two nodes. Charges one RTT of
  /// connection setup to the dialer's clock.
  std::pair<Connection, Connection> connect(NodeId dialer, NodeId listener);

  [[nodiscard]] const std::string& node_name(NodeId id) const {
    return nodes_.at(id).name;
  }
  [[nodiscard]] tee::SimClock& node_clock(NodeId id) {
    return *nodes_.at(id).clock;
  }
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return messages_delivered_;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  friend class Connection;

  struct Message {
    crypto::Bytes payload;
    std::uint64_t arrival_ns = 0;
  };
  struct ConnState {
    NodeId a = 0, b = 0;
    std::deque<Message> to_a, to_b;
    bool closed = false;
  };
  struct Node {
    std::string name;
    tee::SimClock* clock = nullptr;
    bool down = false;
  };

  void send_impl(std::uint64_t conn_id, bool from_side,
                 crypto::BytesView payload);
  std::optional<crypto::Bytes> recv_impl(std::uint64_t conn_id, bool side);

  [[nodiscard]] const LinkSpec& link_between(NodeId a, NodeId b) const;

  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, LinkSpec> links_;  // key: a<<32|b, a<b
  std::unordered_map<std::uint64_t, ConnState> conns_;
  std::uint64_t next_conn_ = 1;
  Adversary adversary_;
  FaultHook fault_hook_;
  LinkSpec default_link_ = LinkSpec::lan();
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace stf::net
