#include "net/network.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/profile.h"

namespace stf::net {
namespace {

struct NetObs {
  obs::Counter& messages_delivered = obs::Registry::global().counter(
      obs::names::kNetMessagesDelivered, "messages received off the fabric");
  obs::Counter& bytes_sent = obs::Registry::global().counter(
      obs::names::kNetBytesSent, "payload bytes handed to the fabric",
      obs::Unit::Bytes);
  obs::Counter& connections_opened = obs::Registry::global().counter(
      obs::names::kNetConnectionsOpened, "connections dialed");
};

NetObs& net_obs() {
  static NetObs* o = new NetObs();
  return *o;
}

}  // namespace

void Connection::send(crypto::BytesView payload) {
  if (network_ == nullptr) throw std::logic_error("send on invalid Connection");
  network_->send_impl(conn_id_, side_, payload);
}

std::optional<crypto::Bytes> Connection::recv() {
  if (network_ == nullptr) throw std::logic_error("recv on invalid Connection");
  return network_->recv_impl(conn_id_, side_);
}

std::size_t Connection::pending() const {
  if (network_ == nullptr) return 0;
  const auto& conn = network_->conns_.at(conn_id_);
  return side_ ? conn.to_b.size() : conn.to_a.size();
}

bool Connection::peer_closed() const {
  if (network_ == nullptr) return true;
  const auto& conn = network_->conns_.at(conn_id_);
  return conn.closed || network_->node_down(remote_);
}

void Connection::close() {
  if (network_ == nullptr) return;
  network_->conns_.at(conn_id_).closed = true;
}

NodeId SimNetwork::add_node(std::string name, tee::SimClock& clock) {
  nodes_.push_back({std::move(name), &clock});
  return static_cast<NodeId>(nodes_.size() - 1);
}

namespace {
std::uint64_t link_key(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (std::uint64_t{a} << 32) | b;
}
}  // namespace

void SimNetwork::set_link(NodeId a, NodeId b, LinkSpec spec) {
  links_[link_key(a, b)] = spec;
}

void SimNetwork::kill_node(NodeId id) {
  nodes_.at(id).down = true;
  for (auto& [conn_id, conn] : conns_) {
    if (conn.a != id && conn.b != id) continue;
    conn.closed = true;
    // In-flight messages addressed to the dead node die with it; traffic it
    // sent before crashing is already on the wire and still arrives.
    auto& to_dead = conn.a == id ? conn.to_a : conn.to_b;
    to_dead.clear();
  }
}

void SimNetwork::revive_node(NodeId id) { nodes_.at(id).down = false; }

const LinkSpec& SimNetwork::link_between(NodeId a, NodeId b) const {
  const auto it = links_.find(link_key(a, b));
  return it != links_.end() ? it->second : default_link_;
}

std::pair<Connection, Connection> SimNetwork::connect(NodeId dialer,
                                                      NodeId listener) {
  if (dialer >= nodes_.size() || listener >= nodes_.size()) {
    throw std::invalid_argument("SimNetwork::connect: unknown node");
  }
  const std::uint64_t id = next_conn_++;
  conns_[id] = ConnState{.a = dialer, .b = listener};
  net_obs().connections_opened.add();
  // TCP-style setup: the dialer pays one RTT; the listener learns of the
  // connection when the first message arrives.
  {
    obs::ScopedCategory attribution(obs::Category::kNet);
    nodes_[dialer].clock->advance(link_between(dialer, listener).rtt_ns);
  }
  return {Connection(this, id, /*side=*/false, dialer, listener),
          Connection(this, id, /*side=*/true, listener, dialer)};
}

void SimNetwork::send_impl(std::uint64_t conn_id, bool from_side,
                           crypto::BytesView payload) {
  ConnState& conn = conns_.at(conn_id);
  const NodeId from = from_side ? conn.b : conn.a;
  const NodeId to = from_side ? conn.a : conn.b;
  const LinkSpec& link = link_between(from, to);

  tee::SimClock& sender_clock = *nodes_[from].clock;
  bytes_sent_ += payload.size();
  net_obs().bytes_sent.add(payload.size());

  Message msg;
  msg.payload.assign(payload.begin(), payload.end());

  AdversaryAction action = AdversaryAction::Pass;
  if (adversary_) action = adversary_(msg.payload);

  // Sender-side serialization cost applies regardless of what the network
  // does with the packet afterwards.
  {
    obs::ScopedCategory attribution(obs::Category::kNet);
    sender_clock.advance(static_cast<std::uint64_t>(
        static_cast<double>(payload.size()) / link.bandwidth * 1e9));
  }

  if (action == AdversaryAction::Drop) return;

  // A closed connection or crashed endpoint swallows the message (the
  // sender only learns through timeouts / peer_closed()).
  if (conn.closed || nodes_[from].down || nodes_[to].down) return;

  FaultDecision fault;
  if (fault_hook_) {
    fault = fault_hook_(from, to, sender_clock.now_ns(), msg.payload);
  }
  if (fault.drop || fault.copies == 0) return;

  std::uint64_t latency = link.rtt_ns / 2 + fault.extra_delay_ns;
  if (action == AdversaryAction::Delay) latency += link.rtt_ns * 10;
  msg.arrival_ns = sender_clock.now_ns() + latency;

  auto& queue = from_side ? conn.to_a : conn.to_b;
  queue.push_back(msg);
  if (action == AdversaryAction::Replay) queue.push_back(msg);
  for (unsigned c = 1; c < fault.copies; ++c) queue.push_back(msg);
}

std::optional<crypto::Bytes> SimNetwork::recv_impl(std::uint64_t conn_id,
                                                   bool side) {
  ConnState& conn = conns_.at(conn_id);
  auto& queue = side ? conn.to_b : conn.to_a;
  if (queue.empty()) return std::nullopt;
  Message msg = std::move(queue.front());
  queue.pop_front();
  const NodeId self = side ? conn.b : conn.a;
  // Waiting for the wire (including any fault-injected extra delay riding
  // in arrival_ns) counts as network time.
  {
    obs::ScopedCategory attribution(obs::Category::kNet);
    nodes_[self].clock->advance_to(msg.arrival_ns);
  }
  ++messages_delivered_;
  net_obs().messages_delivered.add();
  return std::move(msg.payload);
}

}  // namespace stf::net
