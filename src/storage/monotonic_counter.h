// Trusted monotonic counters (Memoir-style rollback defence, §2.3/§3.3.2).
//
// A counter can only move forward; shielded state embeds the counter value
// it was written under, so replaying an older blob is detectable. In
// secureTF the counters live inside the CAS enclave, surviving restarts of
// the worker enclaves whose state they protect.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace stf::storage {

class MonotonicCounterService {
 public:
  /// Creates a counter starting at 0; throws if the id already exists.
  void create(const std::string& id) {
    if (counters_.contains(id)) {
      throw std::invalid_argument("counter exists: " + id);
    }
    counters_[id] = 0;
  }

  /// Atomically increments and returns the new value.
  std::uint64_t increment(const std::string& id) {
    return ++counter_ref(id);
  }

  [[nodiscard]] std::uint64_t read(const std::string& id) const {
    const auto it = counters_.find(id);
    if (it == counters_.end()) {
      throw std::invalid_argument("no such counter: " + id);
    }
    return it->second;
  }

  /// Verifies that `claimed` is the current value (a stale value means the
  /// state being checked was rolled back).
  [[nodiscard]] bool is_current(const std::string& id,
                                std::uint64_t claimed) const {
    return read(id) == claimed;
  }

  [[nodiscard]] bool exists(const std::string& id) const {
    return counters_.contains(id);
  }

 private:
  std::uint64_t& counter_ref(const std::string& id) {
    const auto it = counters_.find(id);
    if (it == counters_.end()) {
      throw std::invalid_argument("no such counter: " + id);
    }
    return it->second;
  }
  std::unordered_map<std::string, std::uint64_t> counters_;
};

}  // namespace stf::storage
