#include "storage/audit_log.h"

namespace stf::storage {

crypto::Bytes AuditEntry::serialize_unauthenticated() const {
  crypto::Bytes out;
  std::uint8_t seq_bytes[8];
  crypto::store_be64(seq_bytes, seq);
  crypto::append(out, crypto::BytesView(seq_bytes, 8));
  std::uint8_t subject_len[8];
  crypto::store_be64(subject_len, subject.size());
  crypto::append(out, crypto::BytesView(subject_len, 8));
  crypto::append(out, crypto::to_bytes(subject));
  crypto::append(out, payload);
  crypto::append(out, crypto::BytesView(prev_digest.data(), 32));
  return out;
}

std::array<std::uint8_t, 32> AuditEntry::digest() const {
  crypto::Bytes all = serialize_unauthenticated();
  crypto::append(all, crypto::BytesView(mac.data(), 32));
  return crypto::Sha256::hash(all);
}

std::array<std::uint8_t, 32> AuditLog::mac_for(const AuditEntry& e) const {
  return crypto::hmac_sha256(key_, e.serialize_unauthenticated());
}

std::uint64_t AuditLog::append(std::string subject, crypto::Bytes payload) {
  AuditEntry entry;
  entry.seq = entries_.size();
  entry.subject = std::move(subject);
  entry.payload = std::move(payload);
  if (!entries_.empty()) entry.prev_digest = entries_.back().digest();
  entry.mac = mac_for(entry);
  entries_.push_back(std::move(entry));
  return entries_.back().seq;
}

bool AuditLog::verify_chain() const {
  std::array<std::uint8_t, 32> prev{};
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const AuditEntry& e = entries_[i];
    if (e.seq != i) return false;
    if (!crypto::ct_equal(crypto::BytesView(e.prev_digest.data(), 32),
                          crypto::BytesView(prev.data(), 32))) {
      return false;
    }
    const auto expected_mac = mac_for(e);
    if (!crypto::ct_equal(crypto::BytesView(expected_mac.data(), 32),
                          crypto::BytesView(e.mac.data(), 32))) {
      return false;
    }
    prev = e.digest();
  }
  return true;
}

std::optional<crypto::Bytes> AuditLog::latest(
    const std::string& subject) const {
  if (!verify_chain()) return std::nullopt;
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->subject == subject) return it->payload;
  }
  return std::nullopt;
}

}  // namespace stf::storage
