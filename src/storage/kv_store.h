// Encrypted embedded key-value store.
//
// Stand-in for the encrypted SQLite the CAS implementation embeds (§4.3):
// secrets, certificates and policies live in this store, which serializes to
// a single AES-GCM-sealed blob whose version is pinned by a monotonic
// counter — so the host can neither read, modify, nor roll back the secret
// database.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "crypto/bytes.h"
#include "crypto/drbg.h"
#include "crypto/gcm.h"
#include "runtime/untrusted_fs.h"
#include "storage/monotonic_counter.h"

namespace stf::storage {

class EncryptedKvStore {
 public:
  /// `key`: 32-byte sealing key. `counter_id` names this store's version
  /// counter inside `counters` (created on first use).
  EncryptedKvStore(crypto::BytesView key, MonotonicCounterService& counters,
                   std::string counter_id, crypto::HmacDrbg& rng);

  void put(const std::string& k, crypto::Bytes v) { data_[k] = std::move(v); }
  [[nodiscard]] std::optional<crypto::Bytes> get(const std::string& k) const {
    const auto it = data_.find(k);
    if (it == data_.end()) return std::nullopt;
    return it->second;
  }
  void erase(const std::string& k) { data_.erase(k); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool contains(const std::string& k) const {
    return data_.contains(k);
  }

  /// Seals the current contents; bumps the version counter so older blobs
  /// become invalid.
  [[nodiscard]] crypto::Bytes seal();

  /// Restores contents from a sealed blob. Returns false (leaving the store
  /// untouched) on tamper or version mismatch (rollback).
  [[nodiscard]] bool load(crypto::BytesView sealed);

  /// Persists the sealed blob on the untrusted host. Host I/O failures
  /// surface as runtime::TransientError (retryable), never as silent loss.
  void seal_to(runtime::UntrustedFs& host, const std::string& path);

  /// Restores from a blob persisted with seal_to(). Throws TransientError
  /// when the host cannot produce the blob (missing file, I/O fault) —
  /// retryable; returns false on tamper/rollback — a security event the
  /// caller must not retry into acceptance.
  [[nodiscard]] bool load_from(const runtime::UntrustedFs& host,
                               const std::string& path);

 private:
  crypto::AesGcm aead_;
  MonotonicCounterService& counters_;
  std::string counter_id_;
  crypto::HmacDrbg& rng_;
  std::map<std::string, crypto::Bytes> data_;
};

}  // namespace stf::storage
