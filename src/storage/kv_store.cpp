#include "storage/kv_store.h"

#include <stdexcept>

namespace stf::storage {

EncryptedKvStore::EncryptedKvStore(crypto::BytesView key,
                                   MonotonicCounterService& counters,
                                   std::string counter_id,
                                   crypto::HmacDrbg& rng)
    : aead_(key), counters_(counters), counter_id_(std::move(counter_id)),
      rng_(rng) {
  if (key.size() != 32) {
    throw std::invalid_argument("EncryptedKvStore: key must be 32 bytes");
  }
  if (!counters_.exists(counter_id_)) counters_.create(counter_id_);
}

crypto::Bytes EncryptedKvStore::seal() {
  // Plain length-prefixed serialization of the map.
  crypto::Bytes plain;
  std::uint8_t n[8];
  crypto::store_be64(n, data_.size());
  crypto::append(plain, crypto::BytesView(n, 8));
  for (const auto& [k, v] : data_) {
    crypto::store_be64(n, k.size());
    crypto::append(plain, crypto::BytesView(n, 8));
    crypto::append(plain, crypto::to_bytes(k));
    crypto::store_be64(n, v.size());
    crypto::append(plain, crypto::BytesView(n, 8));
    crypto::append(plain, v);
  }

  const std::uint64_t version = counters_.increment(counter_id_);
  std::uint8_t aad[8];
  crypto::store_be64(aad, version);

  const crypto::Bytes nonce = rng_.generate(crypto::AesGcm::kNonceSize);
  crypto::Bytes out = nonce;
  crypto::append(out, aead_.seal(nonce, crypto::BytesView(aad, 8), plain));
  return out;
}

void EncryptedKvStore::seal_to(runtime::UntrustedFs& host,
                               const std::string& path) {
  host.write(path, seal());  // TransientError propagates on host I/O fault
}

bool EncryptedKvStore::load_from(const runtime::UntrustedFs& host,
                                 const std::string& path) {
  const auto blob = host.read(path);  // TransientError on host I/O fault
  if (!blob.has_value()) {
    throw runtime::TransientError("kv store: sealed blob missing on host: " +
                                  path);
  }
  return load(*blob);
}

bool EncryptedKvStore::load(crypto::BytesView sealed) {
  if (sealed.size() < crypto::AesGcm::kNonceSize + crypto::AesGcm::kTagSize) {
    return false;
  }
  // Only the blob sealed under the *current* counter value is acceptable:
  // an older blob (rollback) fails AAD authentication.
  std::uint8_t aad[8];
  crypto::store_be64(aad, counters_.read(counter_id_));
  const auto opened = aead_.open(
      sealed.first(crypto::AesGcm::kNonceSize), crypto::BytesView(aad, 8),
      sealed.subspan(crypto::AesGcm::kNonceSize));
  if (!opened.has_value()) return false;

  std::map<std::string, crypto::Bytes> restored;
  const crypto::Bytes& plain = *opened;
  std::size_t cursor = 0;
  auto read_u64 = [&](std::uint64_t& v) {
    if (cursor + 8 > plain.size()) return false;
    v = crypto::load_be64(plain.data() + cursor);
    cursor += 8;
    return true;
  };
  std::uint64_t count = 0;
  if (!read_u64(count)) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t klen = 0, vlen = 0;
    if (!read_u64(klen) || cursor + klen > plain.size()) return false;
    std::string k(plain.begin() + cursor, plain.begin() + cursor + klen);
    cursor += klen;
    if (!read_u64(vlen) || cursor + vlen > plain.size()) return false;
    crypto::Bytes v(plain.begin() + cursor, plain.begin() + cursor + vlen);
    cursor += vlen;
    restored.emplace(std::move(k), std::move(v));
  }
  if (cursor != plain.size()) return false;
  data_ = std::move(restored);
  return true;
}

}  // namespace stf::storage
