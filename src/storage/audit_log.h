// Append-only audit log: a MAC'd hash chain (§3.3.2).
//
// The CAS auditing service records every modification of shielded data in a
// chain where each entry binds the digest of the previous one. Truncating,
// reordering or rewriting history breaks the chain; forging entries requires
// the audit key, which never leaves the CAS enclave. Freshness queries
// ("what is the latest generation of /secure/model?") are answered from the
// verified chain tail.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/bytes.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace stf::storage {

struct AuditEntry {
  std::uint64_t seq = 0;
  std::string subject;              ///< e.g. file path or "fs-meta/worker-1"
  crypto::Bytes payload;            ///< e.g. generation number, state digest
  std::array<std::uint8_t, 32> prev_digest{};
  std::array<std::uint8_t, 32> mac{};

  [[nodiscard]] crypto::Bytes serialize_unauthenticated() const;
  [[nodiscard]] std::array<std::uint8_t, 32> digest() const;
};

class AuditLog {
 public:
  /// `key` is the audit MAC key held inside the CAS enclave.
  explicit AuditLog(crypto::BytesView key) : key_(key.begin(), key.end()) {}

  /// Appends an entry for `subject` with `payload`; returns its sequence.
  std::uint64_t append(std::string subject, crypto::Bytes payload);

  /// Walks the whole chain verifying digests and MACs.
  [[nodiscard]] bool verify_chain() const;

  /// Latest payload recorded for `subject` (after verifying the chain).
  [[nodiscard]] std::optional<crypto::Bytes> latest(
      const std::string& subject) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<AuditEntry>& entries() const {
    return entries_;
  }

  /// Adversarial access for tests: the log storage itself may be attacked.
  std::vector<AuditEntry>& mutable_entries() { return entries_; }

 private:
  [[nodiscard]] std::array<std::uint8_t, 32> mac_for(
      const AuditEntry& e) const;

  crypto::Bytes key_;
  std::vector<AuditEntry> entries_;
};

}  // namespace stf::storage
