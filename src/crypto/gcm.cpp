#include "crypto/gcm.h"

#include <cstring>
#include <stdexcept>

namespace stf::crypto {

AesGcm::AesGcm(BytesView key) : aes_(key) {
  h_.fill(0);
  aes_.encrypt_block(h_.data());
}

// Multiplies x by the GHASH subkey H in GF(2^128) with the GCM bit ordering.
// Bitwise shift-and-add: slow but dependency-free and obviously correct; the
// TEE cost model, not this loop, decides simulated latency.
void AesGcm::gmul(Block& x) const {
  Block z{};
  Block v = h_;
  for (int i = 0; i < 128; ++i) {
    const int byte = i / 8;
    const int bit = 7 - (i % 8);
    if ((x[byte] >> bit) & 1) {
      for (int j = 0; j < 16; ++j) z[j] ^= v[j];
    }
    // v = v >> 1 with conditional reduction by the GCM polynomial.
    const bool lsb = v[15] & 1;
    for (int j = 15; j > 0; --j) {
      v[j] = static_cast<std::uint8_t>((v[j] >> 1) | (v[j - 1] << 7));
    }
    v[0] >>= 1;
    if (lsb) v[0] ^= 0xe1;
  }
  x = z;
}

AesGcm::Block AesGcm::ghash(BytesView aad, BytesView ciphertext) const {
  Block y{};
  auto absorb = [&](BytesView data) {
    std::size_t offset = 0;
    while (offset < data.size()) {
      const std::size_t take = std::min<std::size_t>(16, data.size() - offset);
      for (std::size_t i = 0; i < take; ++i) y[i] ^= data[offset + i];
      gmul(y);
      offset += take;
    }
  };
  absorb(aad);
  absorb(ciphertext);
  Block lengths{};
  store_be64(lengths.data(), std::uint64_t{aad.size()} * 8);
  store_be64(lengths.data() + 8, std::uint64_t{ciphertext.size()} * 8);
  for (int i = 0; i < 16; ++i) y[i] ^= lengths[i];
  gmul(y);
  return y;
}

Bytes AesGcm::seal(BytesView nonce, BytesView aad, BytesView plaintext) const {
  if (nonce.size() != kNonceSize) {
    throw std::invalid_argument("AesGcm: nonce must be 12 bytes");
  }
  // J0 = nonce || 0^31 || 1; data counters start at J0 + 1.
  std::uint8_t j0[16] = {};
  std::memcpy(j0, nonce.data(), kNonceSize);
  j0[15] = 1;
  std::uint8_t ctr1[16];
  std::memcpy(ctr1, j0, 16);
  ctr1[15] = 2;

  Bytes out(plaintext.begin(), plaintext.end());
  aes_.ctr_xor(ctr1, out.data(), out.size());

  Block tag = ghash(aad, BytesView(out.data(), out.size()));
  std::uint8_t ektag[16];
  std::memcpy(ektag, j0, 16);
  aes_.encrypt_block(ektag);
  for (int i = 0; i < 16; ++i) tag[i] ^= ektag[i];

  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

std::optional<Bytes> AesGcm::open(BytesView nonce, BytesView aad,
                                  BytesView ciphertext_and_tag) const {
  if (nonce.size() != kNonceSize || ciphertext_and_tag.size() < kTagSize) {
    return std::nullopt;
  }
  const BytesView ciphertext =
      ciphertext_and_tag.first(ciphertext_and_tag.size() - kTagSize);
  const BytesView received_tag = ciphertext_and_tag.last(kTagSize);

  std::uint8_t j0[16] = {};
  std::memcpy(j0, nonce.data(), kNonceSize);
  j0[15] = 1;

  Block tag = ghash(aad, ciphertext);
  std::uint8_t ektag[16];
  std::memcpy(ektag, j0, 16);
  aes_.encrypt_block(ektag);
  for (int i = 0; i < 16; ++i) tag[i] ^= ektag[i];

  if (!ct_equal(BytesView(tag.data(), tag.size()), received_tag)) {
    return std::nullopt;
  }

  std::uint8_t ctr1[16];
  std::memcpy(ctr1, j0, 16);
  ctr1[15] = 2;
  Bytes plaintext(ciphertext.begin(), ciphertext.end());
  aes_.ctr_xor(ctr1, plaintext.data(), plaintext.size());
  return plaintext;
}

}  // namespace stf::crypto
