// X25519 Diffie-Hellman over Curve25519 (RFC 7748).
//
// The network shield and the CAS provisioning protocol run ephemeral ECDHE
// handshakes; the paper (§7.3) explicitly recommends forward-secret ECDHE
// over RSA, so that is the only key exchange we implement.
#pragma once

#include <array>

#include "crypto/bytes.h"

namespace stf::crypto {

struct X25519 {
  static constexpr std::size_t kKeySize = 32;
  using Key = std::array<std::uint8_t, kKeySize>;

  /// Computes scalar * point on Curve25519 (the raw DH function).
  static Key scalarmult(const Key& scalar, const Key& point);

  /// Derives the public key for `secret` (scalar * base point 9).
  static Key public_from_secret(const Key& secret);

  /// Clamps random bytes into a valid X25519 scalar in place.
  static void clamp(Key& scalar);
};

}  // namespace stf::crypto
