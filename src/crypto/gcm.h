// AES-GCM authenticated encryption (NIST SP 800-38D).
//
// Every confidentiality+integrity boundary in secureTF — sealed EPC pages,
// file-system-shield chunks, network-shield records, the CAS secret store —
// goes through this AEAD.
#pragma once

#include <optional>

#include "crypto/aes.h"
#include "crypto/bytes.h"

namespace stf::crypto {

class AesGcm {
 public:
  static constexpr std::size_t kTagSize = 16;
  static constexpr std::size_t kNonceSize = 12;

  /// Key must be 16 or 32 bytes (AES-128-GCM / AES-256-GCM).
  explicit AesGcm(BytesView key);

  /// Encrypts `plaintext` bound to `aad`. Returns ciphertext || tag.
  /// `nonce` must be 12 bytes and MUST be unique per key.
  Bytes seal(BytesView nonce, BytesView aad, BytesView plaintext) const;

  /// Authenticates and decrypts `ciphertext_and_tag`. Returns std::nullopt if
  /// the tag does not verify (tampered data, wrong key, wrong aad or nonce).
  std::optional<Bytes> open(BytesView nonce, BytesView aad,
                            BytesView ciphertext_and_tag) const;

 private:
  using Block = std::array<std::uint8_t, 16>;

  Block ghash(BytesView aad, BytesView ciphertext) const;
  void gmul(Block& x) const;

  Aes aes_;
  Block h_{};  // GHASH subkey: AES_K(0^128)
};

}  // namespace stf::crypto
