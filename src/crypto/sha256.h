// SHA-256 (FIPS 180-4), the hash underlying enclave measurements (MRENCLAVE),
// HMAC, HKDF and the audit-log hash chain.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.h"

namespace stf::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  /// Absorbs more input; may be called any number of times.
  void update(BytesView data);

  /// Finalizes and returns the digest. The object must not be reused after
  /// calling finish() without calling reset().
  Digest finish();

  /// Restores the initial state so the object can hash a fresh message.
  void reset();

  /// One-shot convenience for the common case.
  static Digest hash(BytesView data);

 private:
  void compress(const std::uint8_t block[kBlockSize]);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Digest as a Bytes value (handy when digests flow into protocols).
inline Bytes sha256(BytesView data) {
  auto d = Sha256::hash(data);
  return Bytes(d.begin(), d.end());
}

}  // namespace stf::crypto
