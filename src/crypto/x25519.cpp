#include "crypto/x25519.h"

#include <cstring>

namespace stf::crypto {
namespace {

// Field arithmetic mod p = 2^255 - 19 with 5 limbs of 51 bits
// (curve25519-donna-c64 style).
using u128 = unsigned __int128;
using Fe = std::array<std::uint64_t, 5>;

constexpr std::uint64_t kMask51 = (std::uint64_t{1} << 51) - 1;

Fe fe_from_bytes(const std::uint8_t s[32]) {
  auto load64 = [](const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  };
  Fe h;
  h[0] = load64(s) & kMask51;
  h[1] = (load64(s + 6) >> 3) & kMask51;
  h[2] = (load64(s + 12) >> 6) & kMask51;
  h[3] = (load64(s + 19) >> 1) & kMask51;
  h[4] = (load64(s + 24) >> 12) & kMask51;
  return h;
}

void fe_to_bytes(std::uint8_t out[32], Fe h) {
  // Fully reduce mod 2^255-19.
  for (int pass = 0; pass < 2; ++pass) {
    h[0] += 19 * (h[4] >> 51);
    h[4] &= kMask51;
    for (int i = 0; i < 4; ++i) {
      h[i + 1] += h[i] >> 51;
      h[i] &= kMask51;
    }
  }
  // Conditionally subtract p once more.
  std::uint64_t q = (h[0] + 19) >> 51;
  q = (h[1] + q) >> 51;
  q = (h[2] + q) >> 51;
  q = (h[3] + q) >> 51;
  q = (h[4] + q) >> 51;
  h[0] += 19 * q;
  for (int i = 0; i < 4; ++i) {
    h[i + 1] += h[i] >> 51;
    h[i] &= kMask51;
  }
  h[4] &= kMask51;

  std::uint8_t* p = out;
  std::uint64_t packed[4];
  packed[0] = h[0] | (h[1] << 51);
  packed[1] = (h[1] >> 13) | (h[2] << 38);
  packed[2] = (h[2] >> 26) | (h[3] << 25);
  packed[3] = (h[3] >> 39) | (h[4] << 12);
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = packed[i];
    for (int j = 0; j < 8; ++j) {
      *p++ = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
}

Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r[i] = a[i] + b[i];
  return r;
}

// a - b without underflow: add 2*p (a multiple of p, so congruent mod p)
// before subtracting. Inputs must be loosely reduced (limbs < 2^52, which
// every fe_mul/fe_sq output satisfies); results stay below 2^53.
Fe fe_sub(const Fe& a, const Fe& b) {
  Fe r;
  r[0] = a[0] + 0xFFFFFFFFFFFDA - b[0];
  r[1] = a[1] + 0xFFFFFFFFFFFFE - b[1];
  r[2] = a[2] + 0xFFFFFFFFFFFFE - b[2];
  r[3] = a[3] + 0xFFFFFFFFFFFFE - b[3];
  r[4] = a[4] + 0xFFFFFFFFFFFFE - b[4];
  return r;
}

Fe fe_mul(const Fe& a, const Fe& b) {
  const u128 a0 = a[0], a1 = a[1], a2 = a[2], a3 = a[3], a4 = a[4];
  const std::uint64_t b0 = b[0], b1 = b[1], b2 = b[2], b3 = b[3], b4 = b[4];
  const std::uint64_t b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19,
                      b4_19 = b4 * 19;

  u128 t0 = a0 * b0 + a1 * b4_19 + a2 * b3_19 + a3 * b2_19 + a4 * b1_19;
  u128 t1 = a0 * b1 + a1 * b0 + a2 * b4_19 + a3 * b3_19 + a4 * b2_19;
  u128 t2 = a0 * b2 + a1 * b1 + a2 * b0 + a3 * b4_19 + a4 * b3_19;
  u128 t3 = a0 * b3 + a1 * b2 + a2 * b1 + a3 * b0 + a4 * b4_19;
  u128 t4 = a0 * b4 + a1 * b3 + a2 * b2 + a3 * b1 + a4 * b0;

  Fe r;
  // Carries are kept in 128 bits: with loosely-reduced inputs the partial
  // sums reach ~2^115, so t >> 51 does not fit in 64 bits.
  t1 += t0 >> 51;
  r[0] = static_cast<std::uint64_t>(t0) & kMask51;
  t2 += t1 >> 51;
  r[1] = static_cast<std::uint64_t>(t1) & kMask51;
  t3 += t2 >> 51;
  r[2] = static_cast<std::uint64_t>(t2) & kMask51;
  t4 += t3 >> 51;
  r[3] = static_cast<std::uint64_t>(t3) & kMask51;
  const std::uint64_t carry = static_cast<std::uint64_t>(t4 >> 51);
  r[4] = static_cast<std::uint64_t>(t4) & kMask51;
  r[0] += carry * 19;
  r[1] += r[0] >> 51;
  r[0] &= kMask51;
  return r;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

Fe fe_mul_small(const Fe& a, std::uint64_t s) {
  u128 t0 = u128{a[0]} * s;
  u128 t1 = u128{a[1]} * s;
  u128 t2 = u128{a[2]} * s;
  u128 t3 = u128{a[3]} * s;
  u128 t4 = u128{a[4]} * s;
  Fe r;
  std::uint64_t carry;
  r[0] = static_cast<std::uint64_t>(t0) & kMask51;
  carry = static_cast<std::uint64_t>(t0 >> 51);
  t1 += carry;
  r[1] = static_cast<std::uint64_t>(t1) & kMask51;
  carry = static_cast<std::uint64_t>(t1 >> 51);
  t2 += carry;
  r[2] = static_cast<std::uint64_t>(t2) & kMask51;
  carry = static_cast<std::uint64_t>(t2 >> 51);
  t3 += carry;
  r[3] = static_cast<std::uint64_t>(t3) & kMask51;
  carry = static_cast<std::uint64_t>(t3 >> 51);
  t4 += carry;
  r[4] = static_cast<std::uint64_t>(t4) & kMask51;
  carry = static_cast<std::uint64_t>(t4 >> 51);
  r[0] += carry * 19;
  return r;
}

// Computes a^(p-2) = a^-1 mod p via the standard addition chain.
Fe fe_invert(const Fe& z) {
  Fe z2 = fe_sq(z);            // 2
  Fe z8 = fe_sq(fe_sq(z2));    // 8
  Fe z9 = fe_mul(z8, z);       // 9
  Fe z11 = fe_mul(z9, z2);     // 11
  Fe z22 = fe_sq(z11);         // 22
  Fe z_5_0 = fe_mul(z22, z9);  // 2^5 - 2^0
  Fe t = fe_sq(z_5_0);
  for (int i = 1; i < 5; ++i) t = fe_sq(t);
  Fe z_10_0 = fe_mul(t, z_5_0);  // 2^10 - 2^0
  t = fe_sq(z_10_0);
  for (int i = 1; i < 10; ++i) t = fe_sq(t);
  Fe z_20_0 = fe_mul(t, z_10_0);  // 2^20 - 2^0
  t = fe_sq(z_20_0);
  for (int i = 1; i < 20; ++i) t = fe_sq(t);
  t = fe_mul(t, z_20_0);  // 2^40 - 2^0
  t = fe_sq(t);
  for (int i = 1; i < 10; ++i) t = fe_sq(t);
  Fe z_50_0 = fe_mul(t, z_10_0);  // 2^50 - 2^0
  t = fe_sq(z_50_0);
  for (int i = 1; i < 50; ++i) t = fe_sq(t);
  Fe z_100_0 = fe_mul(t, z_50_0);  // 2^100 - 2^0
  t = fe_sq(z_100_0);
  for (int i = 1; i < 100; ++i) t = fe_sq(t);
  t = fe_mul(t, z_100_0);  // 2^200 - 2^0
  t = fe_sq(t);
  for (int i = 1; i < 50; ++i) t = fe_sq(t);
  t = fe_mul(t, z_50_0);  // 2^250 - 2^0
  for (int i = 0; i < 5; ++i) t = fe_sq(t);
  return fe_mul(t, z11);  // 2^255 - 21
}

void fe_cswap(Fe& a, Fe& b, std::uint64_t swap) {
  const std::uint64_t mask = 0 - swap;  // all-ones if swap==1
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t x = mask & (a[i] ^ b[i]);
    a[i] ^= x;
    b[i] ^= x;
  }
}

}  // namespace

void X25519::clamp(Key& scalar) {
  scalar[0] &= 248;
  scalar[31] &= 127;
  scalar[31] |= 64;
}

X25519::Key X25519::scalarmult(const Key& scalar, const Key& point) {
  Key e = scalar;
  clamp(e);
  std::uint8_t pt[32];
  std::memcpy(pt, point.data(), 32);
  pt[31] &= 127;  // mask the high bit per RFC 7748

  const Fe x1 = fe_from_bytes(pt);
  Fe x2 = {1, 0, 0, 0, 0};
  Fe z2 = {0, 0, 0, 0, 0};
  Fe x3 = x1;
  Fe z3 = {1, 0, 0, 0, 0};

  std::uint64_t swap = 0;
  for (int pos = 254; pos >= 0; --pos) {
    const std::uint64_t bit = (e[pos / 8] >> (pos % 8)) & 1;
    swap ^= bit;
    fe_cswap(x2, x3, swap);
    fe_cswap(z2, z3, swap);
    swap = bit;

    // Montgomery ladder step (RFC 7748 pseudocode, a24 = 121665).
    const Fe a = fe_add(x2, z2);
    const Fe aa = fe_sq(a);
    const Fe b = fe_sub(x2, z2);
    const Fe bb = fe_sq(b);
    const Fe ee = fe_sub(aa, bb);
    const Fe c = fe_add(x3, z3);
    const Fe d = fe_sub(x3, z3);
    const Fe da = fe_mul(d, a);
    const Fe cb = fe_mul(c, b);
    x3 = fe_sq(fe_add(da, cb));
    z3 = fe_mul(x1, fe_sq(fe_sub(da, cb)));
    x2 = fe_mul(aa, bb);
    z2 = fe_mul(ee, fe_add(aa, fe_mul_small(ee, 121665)));
  }
  fe_cswap(x2, x3, swap);
  fe_cswap(z2, z3, swap);

  const Fe out = fe_mul(x2, fe_invert(z2));
  Key result;
  fe_to_bytes(result.data(), out);
  return result;
}

X25519::Key X25519::public_from_secret(const Key& secret) {
  Key base{};
  base[0] = 9;
  return scalarmult(secret, base);
}

}  // namespace stf::crypto
