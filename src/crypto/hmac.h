// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// HMAC authenticates quotes and audit records; HKDF derives the session,
// sealing and record keys used throughout the shields and the CAS protocol.
#pragma once

#include "crypto/bytes.h"
#include "crypto/sha256.h"

namespace stf::crypto {

/// Computes HMAC-SHA256(key, data).
Sha256::Digest hmac_sha256(BytesView key, BytesView data);

/// HKDF-Extract: compresses input keying material into a pseudorandom key.
Sha256::Digest hkdf_extract(BytesView salt, BytesView ikm);

/// HKDF-Expand: stretches a pseudorandom key into `length` output bytes bound
/// to `info`. `length` must be at most 255 * 32 bytes.
Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length);

/// Convenience extract-then-expand.
Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t length);

}  // namespace stf::crypto
