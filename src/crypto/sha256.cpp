#include "crypto/sha256.h"

#include <bit>
#include <cstring>

namespace stf::crypto {
namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kInitialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

}  // namespace

Sha256::Sha256() { reset(); }

void Sha256::reset() {
  state_ = kInitialState;
  buffer_len_ = 0;
  total_len_ = 0;
}

void Sha256::compress(const std::uint8_t block[kBlockSize]) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 = std::rotr(w[i - 15], 7) ^ std::rotr(w[i - 15], 18) ^
                             (w[i - 15] >> 3);
    const std::uint32_t s1 = std::rotr(w[i - 2], 17) ^ std::rotr(w[i - 2], 19) ^
                             (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  auto [a, b, c, d, e, f, g, h] = state_;
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 =
        std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const std::uint32_t s0 =
        std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(BytesView data) {
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(kBlockSize - buffer_len_, data.size());
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == kBlockSize) {
      compress(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + kBlockSize <= data.size()) {
    compress(data.data() + offset);
    offset += kBlockSize;
  }
  if (offset < data.size()) {
    buffer_len_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffer_len_);
  }
}

Sha256::Digest Sha256::finish() {
  const std::uint64_t bit_len = total_len_ * 8;
  // Pad with 0x80 then zeros so that after appending the 8-byte length the
  // message is block-aligned (buffer_len_ must land on 56 mod 64).
  std::uint8_t padding[kBlockSize + 8] = {0x80};
  const std::size_t pad_len = (buffer_len_ < 56)
                                  ? (56 - buffer_len_)
                                  : (56 + kBlockSize - buffer_len_);
  update(BytesView(padding, pad_len));
  std::uint8_t len_bytes[8];
  store_be64(len_bytes, bit_len);
  update(BytesView(len_bytes, 8));

  Digest digest;
  for (int i = 0; i < 8; ++i) store_be32(digest.data() + 4 * i, state_[i]);
  return digest;
}

Sha256::Digest Sha256::hash(BytesView data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

}  // namespace stf::crypto
