// HMAC-DRBG (NIST SP 800-90A) deterministic random bit generator.
//
// All nonces, ephemeral keys and simulated-entropy draws come from DRBG
// instances. Tests and benchmarks seed them deterministically so every run of
// the reproduction is bit-for-bit repeatable; production-style use seeds from
// the OS entropy pool.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.h"
#include "crypto/sha256.h"

namespace stf::crypto {

class HmacDrbg {
 public:
  /// Instantiates from seed material (entropy || nonce || personalization).
  explicit HmacDrbg(BytesView seed);

  /// Generates `length` pseudorandom bytes.
  Bytes generate(std::size_t length);

  /// Fills an arbitrary trivially-copyable buffer.
  void fill(std::uint8_t* out, std::size_t length);

  /// Mixes additional entropy into the state.
  void reseed(BytesView entropy);

  /// Convenience: uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

 private:
  void update(BytesView provided);

  std::array<std::uint8_t, Sha256::kDigestSize> key_{};
  std::array<std::uint8_t, Sha256::kDigestSize> value_{};
};

/// Process-wide DRBG seeded from std::random_device, for code paths that do
/// not need determinism (e.g. example binaries).
HmacDrbg& system_drbg();

}  // namespace stf::crypto
