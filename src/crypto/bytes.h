// Byte-buffer helpers shared by all cryptographic primitives.
//
// secureTF moves keys, quotes, sealed pages and TLS records around as raw
// octet strings; this header gives those a single vocabulary type (`Bytes`)
// plus the small utilities (hex, constant-time compare, endian load/store)
// every primitive needs.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace stf::crypto {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Builds a byte buffer from a string literal / std::string payload.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Renders a buffer as lowercase hex (for logging, measurements, test vectors).
inline std::string to_hex(BytesView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

/// Parses lowercase/uppercase hex. Returns empty on malformed input of odd
/// length or non-hex characters.
inline Bytes from_hex(std::string_view hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  if (hex.size() % 2 != 0) return {};
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size() + 1; i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

/// Constant-time equality: the comparison time depends only on the lengths,
/// never on the content, so MAC/tag checks do not leak via timing.
inline bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

inline std::uint64_t load_be64(const std::uint8_t* p) {
  return (std::uint64_t{load_be32(p)} << 32) | load_be32(p + 4);
}

inline void store_be64(std::uint8_t* p, std::uint64_t v) {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}

inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline void store_le64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(v);
    v >>= 8;
  }
}

/// Appends `src` to `dst` (concatenation shows up in every KDF/handshake).
inline void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Best-effort scrubbing of key material before a buffer is released.
inline void secure_wipe(Bytes& b) {
  volatile std::uint8_t* p = b.data();
  for (std::size_t i = 0; i < b.size(); ++i) p[i] = 0;
  b.clear();
}

}  // namespace stf::crypto
