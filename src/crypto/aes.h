// AES-128/256 block cipher (FIPS 197) with CTR keystream helper.
//
// This is the cipher behind the file-system shield's chunk sealing, the MEE
// page sealing in the TEE simulator, and the network shield's record layer
// (all via AES-GCM, see gcm.h).
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.h"

namespace stf::crypto {

class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Constructs the key schedule. `key` must be 16 (AES-128) or 32 (AES-256)
  /// bytes; other lengths throw std::invalid_argument.
  explicit Aes(BytesView key);

  /// Encrypts exactly one 16-byte block in place.
  void encrypt_block(std::uint8_t block[kBlockSize]) const;

  /// CTR mode: XORs `data` (in place) with the keystream generated from the
  /// 16-byte initial counter block `iv`. Encryption and decryption are the
  /// same operation.
  void ctr_xor(const std::uint8_t iv[kBlockSize], std::uint8_t* data,
               std::size_t len) const;

 private:
  int rounds_ = 0;
  // Max schedule: AES-256 has 15 round keys of 4 words each.
  std::array<std::uint32_t, 60> round_keys_{};
};

}  // namespace stf::crypto
