#include "crypto/hmac.h"

#include <stdexcept>

namespace stf::crypto {

Sha256::Digest hmac_sha256(BytesView key, BytesView data) {
  std::array<std::uint8_t, Sha256::kBlockSize> padded_key{};
  if (key.size() > Sha256::kBlockSize) {
    const auto digest = Sha256::hash(key);
    std::copy(digest.begin(), digest.end(), padded_key.begin());
  } else {
    std::copy(key.begin(), key.end(), padded_key.begin());
  }

  std::array<std::uint8_t, Sha256::kBlockSize> ipad, opad;
  for (std::size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad[i] = padded_key[i] ^ 0x36;
    opad[i] = padded_key[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(BytesView(ipad.data(), ipad.size()));
  inner.update(data);
  const auto inner_digest = inner.finish();

  Sha256 outer;
  outer.update(BytesView(opad.data(), opad.size()));
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

Sha256::Digest hkdf_extract(BytesView salt, BytesView ikm) {
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length) {
  if (length > 255 * Sha256::kDigestSize) {
    throw std::invalid_argument("hkdf_expand: requested length too large");
  }
  Bytes out;
  out.reserve(length);
  Bytes block;  // T(i-1) || info || counter
  std::uint8_t counter = 1;
  while (out.size() < length) {
    Bytes input = block;
    append(input, info);
    input.push_back(counter++);
    const auto t = hmac_sha256(prk, input);
    block.assign(t.begin(), t.end());
    const std::size_t take = std::min(block.size(), length - out.size());
    out.insert(out.end(), block.begin(), block.begin() + take);
  }
  return out;
}

Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t length) {
  const auto prk = hkdf_extract(salt, ikm);
  return hkdf_expand(BytesView(prk.data(), prk.size()), info, length);
}

}  // namespace stf::crypto
