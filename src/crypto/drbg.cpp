#include "crypto/drbg.h"

#include <random>
#include <stdexcept>

#include "crypto/hmac.h"

namespace stf::crypto {

HmacDrbg::HmacDrbg(BytesView seed) {
  key_.fill(0x00);
  value_.fill(0x01);
  update(seed);
}

void HmacDrbg::update(BytesView provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  Bytes input(value_.begin(), value_.end());
  input.push_back(0x00);
  append(input, provided);
  key_ = hmac_sha256(BytesView(key_.data(), key_.size()), input);
  value_ = hmac_sha256(BytesView(key_.data(), key_.size()),
                       BytesView(value_.data(), value_.size()));
  if (!provided.empty()) {
    input.assign(value_.begin(), value_.end());
    input.push_back(0x01);
    append(input, provided);
    key_ = hmac_sha256(BytesView(key_.data(), key_.size()), input);
    value_ = hmac_sha256(BytesView(key_.data(), key_.size()),
                         BytesView(value_.data(), value_.size()));
  }
}

void HmacDrbg::fill(std::uint8_t* out, std::size_t length) {
  std::size_t produced = 0;
  while (produced < length) {
    value_ = hmac_sha256(BytesView(key_.data(), key_.size()),
                         BytesView(value_.data(), value_.size()));
    const std::size_t take = std::min(value_.size(), length - produced);
    std::copy(value_.begin(), value_.begin() + take, out + produced);
    produced += take;
  }
  update({});
}

Bytes HmacDrbg::generate(std::size_t length) {
  Bytes out(length);
  fill(out.data(), out.size());
  return out;
}

void HmacDrbg::reseed(BytesView entropy) { update(entropy); }

std::uint64_t HmacDrbg::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("uniform: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  for (;;) {
    std::uint8_t raw[8];
    fill(raw, 8);
    const std::uint64_t v = load_be64(raw);
    if (v < limit) return v % bound;
  }
}

HmacDrbg& system_drbg() {
  static HmacDrbg drbg = [] {
    std::random_device rd;
    Bytes seed(48);
    for (std::size_t i = 0; i < seed.size(); i += 4) {
      const std::uint32_t r = rd();
      for (std::size_t j = 0; j < 4 && i + j < seed.size(); ++j) {
        seed[i + j] = static_cast<std::uint8_t>(r >> (8 * j));
      }
    }
    return HmacDrbg(seed);
  }();
  return drbg;
}

}  // namespace stf::crypto
