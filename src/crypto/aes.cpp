#include "crypto/aes.h"

#include <cstring>
#include <stdexcept>

namespace stf::crypto {
namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

inline std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

inline std::uint32_t sub_word(std::uint32_t w) {
  return (std::uint32_t{kSbox[(w >> 24) & 0xff]} << 24) |
         (std::uint32_t{kSbox[(w >> 16) & 0xff]} << 16) |
         (std::uint32_t{kSbox[(w >> 8) & 0xff]} << 8) |
         std::uint32_t{kSbox[w & 0xff]};
}

inline std::uint32_t rot_word(std::uint32_t w) { return (w << 8) | (w >> 24); }

}  // namespace

Aes::Aes(BytesView key) {
  std::size_t nk;  // key length in 32-bit words
  if (key.size() == 16) {
    nk = 4;
    rounds_ = 10;
  } else if (key.size() == 32) {
    nk = 8;
    rounds_ = 14;
  } else {
    throw std::invalid_argument("Aes: key must be 16 or 32 bytes");
  }

  const std::size_t total_words = 4 * (rounds_ + 1);
  for (std::size_t i = 0; i < nk; ++i) {
    round_keys_[i] = load_be32(key.data() + 4 * i);
  }
  for (std::size_t i = nk; i < total_words; ++i) {
    std::uint32_t temp = round_keys_[i - 1];
    if (i % nk == 0) {
      temp = sub_word(rot_word(temp)) ^
             (std::uint32_t{kRcon[i / nk]} << 24);
    } else if (nk > 6 && i % nk == 4) {
      temp = sub_word(temp);
    }
    round_keys_[i] = round_keys_[i - nk] ^ temp;
  }
}

void Aes::encrypt_block(std::uint8_t block[kBlockSize]) const {
  std::uint8_t state[16];
  std::memcpy(state, block, 16);

  auto add_round_key = [&](int round) {
    for (int c = 0; c < 4; ++c) {
      const std::uint32_t w = round_keys_[4 * round + c];
      state[4 * c + 0] ^= static_cast<std::uint8_t>(w >> 24);
      state[4 * c + 1] ^= static_cast<std::uint8_t>(w >> 16);
      state[4 * c + 2] ^= static_cast<std::uint8_t>(w >> 8);
      state[4 * c + 3] ^= static_cast<std::uint8_t>(w);
    }
  };

  auto sub_bytes = [&] {
    for (auto& b : state) b = kSbox[b];
  };

  auto shift_rows = [&] {
    // Row r of the state is bytes state[r], state[r+4], state[r+8], state[r+12].
    std::uint8_t t;
    t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    std::swap(state[2], state[10]);
    std::swap(state[6], state[14]);
    t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
  };

  auto mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      std::uint8_t* col = state + 4 * c;
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      const std::uint8_t all = a0 ^ a1 ^ a2 ^ a3;
      col[0] ^= all ^ xtime(static_cast<std::uint8_t>(a0 ^ a1));
      col[1] ^= all ^ xtime(static_cast<std::uint8_t>(a1 ^ a2));
      col[2] ^= all ^ xtime(static_cast<std::uint8_t>(a2 ^ a3));
      col[3] ^= all ^ xtime(static_cast<std::uint8_t>(a3 ^ a0));
    }
  };

  add_round_key(0);
  for (int round = 1; round < rounds_; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(rounds_);

  std::memcpy(block, state, 16);
}

void Aes::ctr_xor(const std::uint8_t iv[kBlockSize], std::uint8_t* data,
                  std::size_t len) const {
  std::uint8_t counter[kBlockSize];
  std::memcpy(counter, iv, kBlockSize);
  std::uint8_t keystream[kBlockSize];
  std::size_t offset = 0;
  while (offset < len) {
    std::memcpy(keystream, counter, kBlockSize);
    encrypt_block(keystream);
    const std::size_t take = std::min(len - offset, kBlockSize);
    for (std::size_t i = 0; i < take; ++i) data[offset + i] ^= keystream[i];
    offset += take;
    // Increment the big-endian counter in the last 4 bytes (GCM convention).
    for (int i = 15; i >= 12; --i) {
      if (++counter[i] != 0) break;
    }
  }
}

}  // namespace stf::crypto
