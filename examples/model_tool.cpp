#include <cmath>
// stf model_tool — command-line model lifecycle utility.
//
// Works on real files on the local disk (the one place in this repo where
// artifacts leave the simulation), covering the §4.1 export/import workflow:
//
//   model_tool create <out.stfg> [--size-mb N]   build + train a demo model
//   model_tool inspect <model.stfg|.stflite>     print nodes / sizes
//   model_tool freeze <in.stfg> <out.stfg>       fold variables into consts
//   model_tool lite <frozen.stfg> <out.stflite>  lower to the Lite format
//   model_tool quantize <in.stflite> <out.stflite>  int8 weights (§7.2)
//   model_tool classify <model.stflite>          run a sample inference
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "ml/dataset.h"
#include "ml/lite/flat_model.h"
#include "ml/models.h"
#include "ml/optimize.h"
#include "ml/serialize.h"

using namespace stf;

namespace {

crypto::Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return crypto::Bytes(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, crypto::BytesView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

int cmd_create(const std::string& out, std::uint64_t size_mb) {
  ml::Graph g;
  if (size_mb > 0) {
    g = ml::sized_classifier("model", size_mb << 20);
  } else {
    g = ml::mnist_mlp(64, 7);
    ml::Session trainer(g);
    const ml::Dataset data = ml::synthetic_mnist(400, 21);
    for (int e = 0; e < 6; ++e) {
      for (std::int64_t b = 0; b < data.size() / 100; ++b) {
        trainer.train_step("loss", data.batch_feeds(b, 100), 0.15f);
      }
    }
    // Bake the trained weights in as initial values.
    g = ml::freeze(g, trainer);
  }
  write_file(out, ml::serialize_graph(g));
  std::printf("wrote %s (%zu nodes, %llu KB parameters)\n", out.c_str(),
              g.node_count(),
              static_cast<unsigned long long>(g.parameter_bytes() >> 10));
  return 0;
}

int cmd_inspect(const std::string& path) {
  const auto blob = read_file(path);
  if (path.size() > 8 && path.ends_with(".stflite")) {
    const auto model = ml::lite::FlatModel::deserialize(blob);
    std::printf("Lite model: %zu ops, %zu tensors, %llu KB weights%s\n",
                model.ops().size(), model.tensors().size(),
                static_cast<unsigned long long>(model.weight_bytes() >> 10),
                model.is_quantized() ? " (int8)" : " (float32)");
    return 0;
  }
  const ml::Graph g = ml::deserialize_graph(blob);
  std::printf("Graph: %zu nodes, %llu KB parameters, %zu variables\n",
              g.node_count(),
              static_cast<unsigned long long>(g.parameter_bytes() >> 10),
              g.variables().size());
  for (const auto& n : g.nodes()) {
    std::printf("  %-22s %-20s inputs:%zu%s\n", n.name.c_str(),
                ml::op_name(n.type), n.inputs.size(),
                n.value.has_value()
                    ? (" value:" + ml::shape_to_string(n.value->shape()))
                          .c_str()
                    : "");
  }
  return 0;
}

int cmd_freeze(const std::string& in, const std::string& out) {
  const ml::Graph g = ml::deserialize_graph(read_file(in));
  ml::Session session(g);  // variables take their initial values
  const ml::Graph frozen = ml::freeze(g, session);
  write_file(out, ml::serialize_graph(frozen));
  std::printf("froze %zu variables -> %s\n", g.variables().size(),
              out.c_str());
  return 0;
}

int cmd_lite(const std::string& in, const std::string& out) {
  ml::Graph g = ml::deserialize_graph(read_file(in));
  ml::OptimizeReport report;
  const ml::Graph optimized = ml::optimize(g, {"probs"}, &report);
  const auto model =
      ml::lite::FlatModel::from_frozen(optimized, "input", "probs");
  write_file(out, model.serialize());
  std::printf("lowered %zu -> %zu nodes; %llu KB model -> %s\n",
              report.nodes_before, report.nodes_after,
              static_cast<unsigned long long>(model.weight_bytes() >> 10),
              out.c_str());
  return 0;
}

int cmd_quantize(const std::string& in, const std::string& out) {
  const auto model = ml::lite::FlatModel::deserialize(read_file(in));
  const auto q = model.quantized();
  write_file(out, q.serialize());
  std::printf("quantized: %llu KB float32 -> %llu KB int8 -> %s\n",
              static_cast<unsigned long long>(model.weight_bytes() >> 10),
              static_cast<unsigned long long>(q.weight_bytes() >> 10),
              out.c_str());
  return 0;
}

int cmd_classify(const std::string& path) {
  const auto model = ml::lite::FlatModel::deserialize(read_file(path));
  ml::lite::LiteInterpreter interp(model);
  // Feed a sample with the model's expected input width.
  std::int64_t dim = 784;
  for (const auto& op : model.ops()) {
    // The first matmul's weight reveals the input dimension.
    if (op.type == ml::OpType::MatMul) {
      const auto& w = model.tensors()[static_cast<std::size_t>(op.inputs[1])];
      if (w.is_weight() && w.shape.size() == 2) dim = w.shape[0];
      break;
    }
  }
  ml::Tensor input({1, dim});
  for (std::int64_t i = 0; i < dim; ++i) {
    input.at(i) = 0.5f + 0.4f * std::sin(static_cast<float>(i) * 0.05f);
  }
  const ml::Tensor probs = interp.invoke(input);
  std::printf("class probabilities:");
  for (std::int64_t i = 0; i < probs.size(); ++i) {
    std::printf(" %.3f", probs.at(i));
  }
  std::printf("\n");
  return 0;
}

void usage() {
  std::printf(
      "usage:\n"
      "  model_tool create <out.stfg> [--size-mb N]\n"
      "  model_tool inspect <model.stfg|model.stflite>\n"
      "  model_tool freeze <in.stfg> <out.stfg>\n"
      "  model_tool lite <frozen.stfg> <out.stflite>\n"
      "  model_tool quantize <in.stflite> <out.stflite>\n"
      "  model_tool classify <model.stflite>\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "create" && argc >= 3) {
      std::uint64_t size_mb = 0;
      if (argc >= 5 && std::strcmp(argv[3], "--size-mb") == 0) {
        size_mb = std::strtoull(argv[4], nullptr, 10);
      }
      return cmd_create(argv[2], size_mb);
    }
    if (cmd == "inspect" && argc == 3) return cmd_inspect(argv[2]);
    if (cmd == "freeze" && argc == 4) return cmd_freeze(argv[2], argv[3]);
    if (cmd == "lite" && argc == 4) return cmd_lite(argv[2], argv[3]);
    if (cmd == "quantize" && argc == 4) return cmd_quantize(argv[2], argv[3]);
    if (cmd == "classify" && argc == 3) return cmd_classify(argv[2]);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
