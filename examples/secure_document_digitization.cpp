// Deployment #1 (§6.1): secure handwritten-document digitization.
//
// A company runs an inference service in the public cloud. Three parties,
// three secrets:
//   * the company protects its model and inference code (fs shield);
//   * customers protect their document images (network shield, after
//     attesting the service);
//   * the cloud operator — the adversary — sees only ciphertext.
//
// This example runs the whole flow, including a snooping cloud operator who
// captures all network traffic and host files and finds nothing readable.
#include <cstdio>
#include <string>

#include "core/classifier_server.h"
#include "core/securetf.h"
#include "ml/dataset.h"
#include "ml/models.h"

using namespace stf;

int main() {
  std::printf("== secure handwritten document digitization (paper §6.1) ==\n\n");

  // --- the company trains its OCR-style model offline ---------------------
  ml::Graph graph = ml::mnist_mlp(64, 3);
  ml::Session trainer(graph);
  const ml::Dataset corpus = ml::synthetic_mnist(600, 31);
  for (int epoch = 0; epoch < 8; ++epoch) {
    for (std::int64_t b = 0; b < corpus.size() / 100; ++b) {
      trainer.train_step("loss", corpus.batch_feeds(b, 100), 0.15f);
    }
  }
  const auto model =
      ml::lite::FlatModel::from_frozen(ml::freeze(graph, trainer), "input",
                                       "probs");

  // --- cloud deployment -----------------------------------------------------
  tee::ProvisioningAuthority intel;
  core::SecureTfConfig cfg;
  cfg.node_name = "cloud";
  cfg.mode = tee::TeeMode::Hardware;
  core::SecureTfContext cloud(cfg, &intel);

  tee::Platform cas_host("company-cas", tee::TeeMode::Hardware, cfg.model,
                         intel);
  cas::CasServer cas(cas_host, intel, crypto::to_bytes("digitize-cas"));
  cas::EnclavePolicy policy;
  policy.expected_mrenclave = cloud.service_measurement();
  policy.secrets = {
      {"fs-key", crypto::HmacDrbg(crypto::to_bytes("company")).generate(32)}};
  cas.register_policy("digitization", policy);

  const auto attested = cloud.attach_cas(cas, "digitization");
  if (!attested.ok) {
    std::printf("service attestation failed: %s\n", attested.error.c_str());
    return 1;
  }
  cloud.save_lite_model("/secure/ocr-model.stflite", model);
  std::printf("company: model deployed encrypted (cloud host sees %zu bytes "
              "of ciphertext)\n",
              cloud.host_fs().read("/secure/ocr-model.stflite")->size());

  auto service =
      cloud.create_lite_service(cloud.load_lite_model("/secure/ocr-model.stflite"));
  crypto::HmacDrbg rng(crypto::to_bytes("service-rng"));
  core::ClassifierServer server(*service, rng, 28 * 28);

  // --- the adversary: the cloud operator snoops everything ------------------
  net::SimNetwork net;
  std::size_t sniffed_messages = 0;
  bool plaintext_leaked = false;
  const ml::Dataset documents = ml::synthetic_mnist(5, 99);
  net.set_adversary([&](crypto::Bytes& payload) {
    ++sniffed_messages;
    // Scan captured traffic for any raw image bytes.
    const auto* raw =
        reinterpret_cast<const std::uint8_t*>(documents.images.data());
    for (std::size_t off = 0; off + 64 < payload.size(); off += 64) {
      if (std::equal(payload.begin() + off, payload.begin() + off + 64, raw)) {
        plaintext_leaked = true;
      }
    }
    return net::AdversaryAction::Pass;
  });

  // --- a customer sends handwritten pages -----------------------------------
  tee::SimClock customer_clock;
  const auto customer_node = net.add_node("customer", customer_clock);
  const auto cloud_node =
      net.add_node("cloud", cloud.platform().base_clock());
  auto [customer_conn, cloud_conn] = net.connect(customer_node, cloud_node);

  crypto::HmacDrbg customer_rng(crypto::to_bytes("customer"));
  core::ClassifierClient client(customer_rng, cfg.model, customer_clock);
  customer_conn.send(client.hello());

  int digitized = 0;
  server.serve_connection(cloud_conn, [&] {
    const auto server_hello = customer_conn.recv();
    client.finish(*server_hello, customer_conn);
    for (std::int64_t i = 0; i < documents.size(); ++i) {
      client.send_image(documents.sample(i));
    }
  });
  for (std::int64_t i = 0; i < documents.size(); ++i) {
    const auto reply = client.recv_reply();
    if (reply.has_value() && reply->ok) {
      std::printf("customer: page %lld digitized as class %lld\n",
                  static_cast<long long>(i),
                  static_cast<long long>(reply->label));
      ++digitized;
    }
  }

  std::printf("\nservice handled %llu requests; operator sniffed %zu "
              "messages; plaintext leaked: %s\n",
              static_cast<unsigned long long>(server.requests_served()),
              sniffed_messages, plaintext_leaked ? "YES (bug!)" : "no");
  return plaintext_leaked || digitized != documents.size() ? 1 : 0;
}
