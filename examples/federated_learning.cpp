// Deployment #2 (§6.2): secure federated learning across hospitals.
//
// Three hospitals jointly train a diagnosis model. Patient data never leaves
// a hospital; only model parameters travel — and because local models leak
// information about training data, even those are (a) only shared with a
// *globally attested* aggregation enclave and (b) encrypted in transit by
// the network shield.
//
// The global aggregator runs FedAvg inside an SGX enclave; each round every
// hospital trains locally, ships parameters over its shielded channel, and
// receives the averaged model back.
#include <cstdio>
#include <vector>

#include "cas/attest_client.h"
#include "runtime/shielded_link.h"
#include "core/securetf.h"
#include "ml/dataset.h"
#include "ml/models.h"
#include "ml/serialize.h"

using namespace stf;

namespace {

struct Hospital {
  std::string name;
  ml::Dataset data;
  std::unique_ptr<ml::Session> session;
  tee::SimClock clock;
  runtime::SecureChannel to_global;
};

}  // namespace

int main() {
  std::printf("== secure federated learning, medical use-case (paper §6.2) ==\n\n");

  const ml::Graph graph = ml::mnist_mlp(48, 13);
  tee::CostModel model;
  tee::ProvisioningAuthority intel;

  // --- the attested global aggregation enclave ------------------------------
  tee::Platform global_host("aggregator-host", tee::TeeMode::Hardware, model,
                            intel);
  auto aggregator = global_host.launch_enclave(
      {.name = "fedavg-aggregator",
       .content = crypto::to_bytes("stf-fedavg-v1"),
       .binary_bytes = 4 << 20});
  ml::Session global_session(graph);

  // Hospitals verify the aggregator's quote before sharing anything.
  tee::Platform verifier_host("hospital-consortium-cas", tee::TeeMode::Hardware,
                              model, intel);
  cas::CasServer consortium_cas(verifier_host, intel,
                                crypto::to_bytes("consortium"));
  cas::EnclavePolicy policy;
  policy.expected_mrenclave = aggregator->mrenclave();
  policy.secrets = {{"aggregation-cert",
                     crypto::HmacDrbg(crypto::to_bytes("agg")).generate(64)}};
  consortium_cas.register_policy("fedavg", policy);

  net::SimNetwork net;
  const auto global_node = net.add_node("aggregator",
                                        global_host.base_clock());
  const auto cas_node =
      net.add_node("consortium-cas", verifier_host.base_clock());
  crypto::HmacDrbg rng(crypto::to_bytes("fl-example"));

  const auto attested = cas::attest_with_cas(
      consortium_cas, global_host, *aggregator, net, global_node, cas_node,
      rng, "fedavg");
  if (!attested.ok) {
    std::printf("aggregator failed attestation: %s\n", attested.error.c_str());
    return 1;
  }
  std::printf("aggregator enclave attested by the consortium (%.1f ms)\n\n",
              attested.breakdown.total_ms);

  // --- hospitals with disjoint private datasets ------------------------------
  std::vector<Hospital> hospitals;
  // The network and channels hold pointers to each hospital's clock:
  // reserve up front so the vector never reallocates.
  hospitals.reserve(3);
  std::vector<runtime::SecureChannel> global_sides;
  for (int h = 0; h < 3; ++h) {
    Hospital hospital;
    hospital.name = "hospital-" + std::to_string(h);
    hospital.data = ml::synthetic_mnist(300, 41 + static_cast<unsigned>(h));
    hospital.session = std::make_unique<ml::Session>(graph);
    hospitals.push_back(std::move(hospital));

    Hospital& ref = hospitals.back();
    const auto node = net.add_node(ref.name, ref.clock);
    auto link = runtime::ShieldedLink::establish(
        net, node, global_node, model, ref.clock, global_host.base_clock(),
        rng);
    ref.to_global = std::move(link.a_to_b);
    global_sides.push_back(std::move(link.b_to_a));
  }

  // --- federated rounds -------------------------------------------------------
  const ml::Dataset held_out = ml::synthetic_mnist(200, 77);
  auto global_accuracy = [&] {
    const auto feeds = held_out.batch_feeds(0, held_out.size());
    const ml::Tensor pred = global_session.run1("pred", feeds);
    int correct = 0;
    for (std::int64_t i = 0; i < held_out.size(); ++i) {
      if (static_cast<std::int64_t>(pred.at(i)) == held_out.label_of(i)) {
        ++correct;
      }
    }
    return 100.0 * correct / static_cast<double>(held_out.size());
  };

  std::printf("round  0: global accuracy %.1f%% (untrained)\n",
              global_accuracy());
  for (int round = 1; round <= 8; ++round) {
    const auto global_params = ml::serialize_tensor_map(
        global_session.variable_snapshot());
    // Hospitals train locally on private data, then share parameters only.
    for (std::size_t h = 0; h < hospitals.size(); ++h) {
      global_sides[h].send(global_params);
      const auto params = hospitals[h].to_global.recv();
      hospitals[h].session->restore_variables(
          ml::deserialize_tensor_map(*params));
      for (std::int64_t b = 0; b < hospitals[h].data.size() / 100; ++b) {
        hospitals[h].session->train_step(
            "loss", hospitals[h].data.batch_feeds(b, 100), 0.08f);
      }
      hospitals[h].to_global.send(ml::serialize_tensor_map(
          hospitals[h].session->variable_snapshot()));
    }
    // FedAvg inside the attested enclave.
    std::map<std::string, ml::Tensor> average;
    for (std::size_t h = 0; h < hospitals.size(); ++h) {
      auto params = ml::deserialize_tensor_map(*global_sides[h].recv());
      aggregator->compute(1e6);  // averaging work, charged to the enclave
      for (auto& [name, value] : params) {
        auto it = average.find(name);
        if (it == average.end()) {
          average.emplace(name, std::move(value));
        } else {
          for (std::int64_t i = 0; i < value.size(); ++i) {
            it->second.at(i) += value.at(i);
          }
        }
      }
    }
    const float inv = 1.0f / static_cast<float>(hospitals.size());
    for (auto& [name, value] : average) {
      for (std::int64_t i = 0; i < value.size(); ++i) value.at(i) *= inv;
    }
    global_session.restore_variables(average);
    std::printf("round %2d: global accuracy %.1f%%\n", round,
                global_accuracy());
  }

  std::printf("\npatient records shared across hospitals: 0 bytes\n");
  std::printf("model parameters travelled only on attested, shielded "
              "channels\n");
  return 0;
}
