// Elastic, attested inference fleet (design challenge 4, §3.2).
//
// A public-cloud autoscaler reacts to load by spawning more secure
// classification containers. Every new container must attest against the CAS
// before it can decrypt the model — a single policy covers the whole fleet
// because all containers run the same measured image. A container built from
// a tampered image is refused automatically.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/securetf.h"
#include "ml/dataset.h"
#include "ml/models.h"

using namespace stf;

int main() {
  std::printf("== elastic attested inference fleet ==\n\n");

  // Model preparation (offline).
  ml::Graph graph = ml::mnist_mlp(32, 5);
  ml::Session trainer(graph);
  const ml::Dataset data = ml::synthetic_mnist(400, 51);
  for (int e = 0; e < 6; ++e) {
    for (std::int64_t b = 0; b < data.size() / 100; ++b) {
      trainer.train_step("loss", data.batch_feeds(b, 100), 0.15f);
    }
  }
  const auto model =
      ml::lite::FlatModel::from_frozen(ml::freeze(graph, trainer), "input",
                                       "probs");

  tee::ProvisioningAuthority intel;
  tee::CostModel cost_model;
  tee::Platform cas_host("cas", tee::TeeMode::Hardware, cost_model, intel);
  cas::CasServer cas(cas_host, intel, crypto::to_bytes("fleet-cas"));

  const auto fs_key =
      crypto::HmacDrbg(crypto::to_bytes("fleet-key")).generate(32);

  // One policy for the entire fleet.
  bool policy_registered = false;

  std::vector<std::unique_ptr<core::SecureTfContext>> fleet;
  std::vector<std::unique_ptr<core::InferenceService>> services;

  auto scale_out = [&](int how_many) {
    for (int i = 0; i < how_many; ++i) {
      core::SecureTfConfig cfg;
      cfg.node_name = "container-" + std::to_string(fleet.size());
      cfg.mode = tee::TeeMode::Hardware;
      auto ctx = std::make_unique<core::SecureTfContext>(cfg, &intel);
      if (!policy_registered) {
        cas::EnclavePolicy policy;
        policy.expected_mrenclave = ctx->service_measurement();
        policy.secrets = {{"fs-key", fs_key}};
        cas.register_policy("fleet", policy);
        policy_registered = true;
      }
      const auto outcome = ctx->attach_cas(cas, "fleet");
      if (!outcome.ok) {
        std::printf("  container refused: %s\n", outcome.error.c_str());
        continue;
      }
      ctx->save_lite_model("/secure/model.stflite", model);
      services.push_back(ctx->create_lite_service(
          ctx->load_lite_model("/secure/model.stflite")));
      std::printf("  %s attested in %.1f ms and joined the fleet\n",
                  ctx->config().node_name.c_str(),
                  outcome.breakdown.total_ms);
      fleet.push_back(std::move(ctx));
    }
  };

  std::printf("baseline load: 1 container\n");
  scale_out(1);
  std::printf("\ntraffic spike: scaling out to 4 containers\n");
  scale_out(3);

  // Load-balance requests across the fleet.
  const ml::Dataset requests = ml::synthetic_mnist(12, 60);
  int answered = 0;
  for (std::int64_t i = 0; i < requests.size(); ++i) {
    auto& service = services[static_cast<std::size_t>(i) % services.size()];
    (void)service->classify_label(requests.sample(i));
    ++answered;
  }
  std::printf("\nfleet of %zu containers answered %d requests "
              "(%llu attestations served by CAS)\n",
              services.size(), answered,
              static_cast<unsigned long long>(cas.requests_served()));
  return answered == requests.size() ? 0 : 1;
}
