// Quickstart: the end-to-end secureTF workflow on one page.
//
//   1. define + train a model with the full framework (the "Python API"
//      stage of §4.1, here via the C++ builder);
//   2. freeze it and convert to the Lite format (§4.2);
//   3. store it on the untrusted host through the file-system shield;
//   4. attest the service enclave against a CAS and receive the keys;
//   5. classify inputs inside the enclave.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/classifier_server.h"
#include "core/securetf.h"
#include "ml/dataset.h"
#include "ml/models.h"

using namespace stf;

int main() {
  std::printf("== secureTF quickstart ==\n\n");

  // --- 1. train a small MNIST classifier (trusted environment) ------------
  ml::Graph graph = ml::mnist_mlp(/*hidden=*/64, /*seed=*/7);
  ml::Session trainer(graph);
  const ml::Dataset train_data = ml::synthetic_mnist(600, 21);
  float loss = 0;
  for (int epoch = 0; epoch < 8; ++epoch) {
    for (std::int64_t b = 0; b < train_data.size() / 100; ++b) {
      loss = trainer.train_step("loss", train_data.batch_feeds(b, 100), 0.15f);
    }
  }
  std::printf("trained model, final loss %.3f\n", loss);

  // --- 2. freeze + convert to the Lite inference format -------------------
  const ml::Graph frozen = ml::freeze(graph, trainer);
  const auto lite = ml::lite::FlatModel::from_frozen(frozen, "input", "probs");
  std::printf("frozen graph -> Lite model (%llu KB of weights)\n",
              static_cast<unsigned long long>(lite.weight_bytes() >> 10));

  // --- 3. a secureTF node on the untrusted cloud ---------------------------
  tee::ProvisioningAuthority intel;  // the platform provisioning registry
  core::SecureTfConfig cfg;
  cfg.node_name = "cloud-node-0";
  cfg.mode = tee::TeeMode::Hardware;
  core::SecureTfContext ctx(cfg, &intel);

  // The CAS holds the deployment policy: which enclave measurement may
  // receive which secrets.
  tee::Platform cas_host("cas-host", tee::TeeMode::Hardware, cfg.model, intel);
  cas::CasServer cas(cas_host, intel, crypto::to_bytes("quickstart-cas"));
  cas::EnclavePolicy policy;
  policy.expected_mrenclave = ctx.service_measurement();
  policy.secrets = {
      {"fs-key", crypto::HmacDrbg(crypto::to_bytes("deploy")).generate(32)}};
  cas.register_policy("quickstart", policy);

  // --- 4. attest, receive keys, store the model shielded -------------------
  const auto outcome = ctx.attach_cas(cas, "quickstart");
  if (!outcome.ok) {
    std::printf("attestation failed: %s\n", outcome.error.c_str());
    return 1;
  }
  std::printf("attested against CAS in %.2f ms (quote verify %.2f ms)\n",
              outcome.breakdown.total_ms,
              outcome.breakdown.quote_verification_ms);
  ctx.save_lite_model("/secure/model.stflite", lite);
  std::printf("model stored encrypted on the untrusted host\n");

  // --- 5. serve classifications inside the enclave -------------------------
  auto service = ctx.create_lite_service(ctx.load_lite_model(
      "/secure/model.stflite"));
  const ml::Dataset test = ml::synthetic_mnist(20, 22);
  int correct = 0;
  for (std::int64_t i = 0; i < test.size(); ++i) {
    const auto label = service->classify_label(test.sample(i));
    if (label == test.label_of(i)) ++correct;
  }
  std::printf(
      "classified %lld test images inside the enclave: %d/%lld correct, "
      "%.2f ms (virtual) per image\n",
      static_cast<long long>(test.size()), correct,
      static_cast<long long>(test.size()), service->last_latency_ms());
  std::printf("\nquickstart complete.\n");
  return 0;
}
