file(REMOVE_RECURSE
  "libstf_net.a"
)
