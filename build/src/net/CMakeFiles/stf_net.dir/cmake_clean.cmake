file(REMOVE_RECURSE
  "CMakeFiles/stf_net.dir/network.cpp.o"
  "CMakeFiles/stf_net.dir/network.cpp.o.d"
  "libstf_net.a"
  "libstf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
