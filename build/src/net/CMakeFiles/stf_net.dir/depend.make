# Empty dependencies file for stf_net.
# This may be replaced when dependencies are built.
