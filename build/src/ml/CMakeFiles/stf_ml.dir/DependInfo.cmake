
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/stf_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/stf_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/graph.cpp" "src/ml/CMakeFiles/stf_ml.dir/graph.cpp.o" "gcc" "src/ml/CMakeFiles/stf_ml.dir/graph.cpp.o.d"
  "/root/repo/src/ml/lite/flat_model.cpp" "src/ml/CMakeFiles/stf_ml.dir/lite/flat_model.cpp.o" "gcc" "src/ml/CMakeFiles/stf_ml.dir/lite/flat_model.cpp.o.d"
  "/root/repo/src/ml/models.cpp" "src/ml/CMakeFiles/stf_ml.dir/models.cpp.o" "gcc" "src/ml/CMakeFiles/stf_ml.dir/models.cpp.o.d"
  "/root/repo/src/ml/ops.cpp" "src/ml/CMakeFiles/stf_ml.dir/ops.cpp.o" "gcc" "src/ml/CMakeFiles/stf_ml.dir/ops.cpp.o.d"
  "/root/repo/src/ml/optimize.cpp" "src/ml/CMakeFiles/stf_ml.dir/optimize.cpp.o" "gcc" "src/ml/CMakeFiles/stf_ml.dir/optimize.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/ml/CMakeFiles/stf_ml.dir/serialize.cpp.o" "gcc" "src/ml/CMakeFiles/stf_ml.dir/serialize.cpp.o.d"
  "/root/repo/src/ml/session.cpp" "src/ml/CMakeFiles/stf_ml.dir/session.cpp.o" "gcc" "src/ml/CMakeFiles/stf_ml.dir/session.cpp.o.d"
  "/root/repo/src/ml/slalom.cpp" "src/ml/CMakeFiles/stf_ml.dir/slalom.cpp.o" "gcc" "src/ml/CMakeFiles/stf_ml.dir/slalom.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/stf_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/stf_tee.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
