# Empty compiler generated dependencies file for stf_ml.
# This may be replaced when dependencies are built.
