file(REMOVE_RECURSE
  "libstf_ml.a"
)
