file(REMOVE_RECURSE
  "CMakeFiles/stf_ml.dir/dataset.cpp.o"
  "CMakeFiles/stf_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/stf_ml.dir/graph.cpp.o"
  "CMakeFiles/stf_ml.dir/graph.cpp.o.d"
  "CMakeFiles/stf_ml.dir/lite/flat_model.cpp.o"
  "CMakeFiles/stf_ml.dir/lite/flat_model.cpp.o.d"
  "CMakeFiles/stf_ml.dir/models.cpp.o"
  "CMakeFiles/stf_ml.dir/models.cpp.o.d"
  "CMakeFiles/stf_ml.dir/ops.cpp.o"
  "CMakeFiles/stf_ml.dir/ops.cpp.o.d"
  "CMakeFiles/stf_ml.dir/optimize.cpp.o"
  "CMakeFiles/stf_ml.dir/optimize.cpp.o.d"
  "CMakeFiles/stf_ml.dir/serialize.cpp.o"
  "CMakeFiles/stf_ml.dir/serialize.cpp.o.d"
  "CMakeFiles/stf_ml.dir/session.cpp.o"
  "CMakeFiles/stf_ml.dir/session.cpp.o.d"
  "CMakeFiles/stf_ml.dir/slalom.cpp.o"
  "CMakeFiles/stf_ml.dir/slalom.cpp.o.d"
  "libstf_ml.a"
  "libstf_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stf_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
