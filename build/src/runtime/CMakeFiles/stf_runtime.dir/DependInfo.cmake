
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/fs_shield.cpp" "src/runtime/CMakeFiles/stf_runtime.dir/fs_shield.cpp.o" "gcc" "src/runtime/CMakeFiles/stf_runtime.dir/fs_shield.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/runtime/CMakeFiles/stf_runtime.dir/scheduler.cpp.o" "gcc" "src/runtime/CMakeFiles/stf_runtime.dir/scheduler.cpp.o.d"
  "/root/repo/src/runtime/secure_channel.cpp" "src/runtime/CMakeFiles/stf_runtime.dir/secure_channel.cpp.o" "gcc" "src/runtime/CMakeFiles/stf_runtime.dir/secure_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/stf_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/stf_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/stf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
