# Empty dependencies file for stf_runtime.
# This may be replaced when dependencies are built.
