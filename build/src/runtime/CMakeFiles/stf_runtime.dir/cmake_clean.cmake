file(REMOVE_RECURSE
  "CMakeFiles/stf_runtime.dir/fs_shield.cpp.o"
  "CMakeFiles/stf_runtime.dir/fs_shield.cpp.o.d"
  "CMakeFiles/stf_runtime.dir/scheduler.cpp.o"
  "CMakeFiles/stf_runtime.dir/scheduler.cpp.o.d"
  "CMakeFiles/stf_runtime.dir/secure_channel.cpp.o"
  "CMakeFiles/stf_runtime.dir/secure_channel.cpp.o.d"
  "libstf_runtime.a"
  "libstf_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stf_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
