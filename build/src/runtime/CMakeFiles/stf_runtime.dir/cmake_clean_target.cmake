file(REMOVE_RECURSE
  "libstf_runtime.a"
)
