# Empty compiler generated dependencies file for stf_core.
# This may be replaced when dependencies are built.
