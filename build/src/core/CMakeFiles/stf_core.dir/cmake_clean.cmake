file(REMOVE_RECURSE
  "CMakeFiles/stf_core.dir/classifier_server.cpp.o"
  "CMakeFiles/stf_core.dir/classifier_server.cpp.o.d"
  "CMakeFiles/stf_core.dir/inference.cpp.o"
  "CMakeFiles/stf_core.dir/inference.cpp.o.d"
  "CMakeFiles/stf_core.dir/securetf.cpp.o"
  "CMakeFiles/stf_core.dir/securetf.cpp.o.d"
  "CMakeFiles/stf_core.dir/serving.cpp.o"
  "CMakeFiles/stf_core.dir/serving.cpp.o.d"
  "libstf_core.a"
  "libstf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
