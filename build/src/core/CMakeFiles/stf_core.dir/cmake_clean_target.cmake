file(REMOVE_RECURSE
  "libstf_core.a"
)
