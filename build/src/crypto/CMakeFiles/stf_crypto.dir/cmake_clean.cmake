file(REMOVE_RECURSE
  "CMakeFiles/stf_crypto.dir/aes.cpp.o"
  "CMakeFiles/stf_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/stf_crypto.dir/drbg.cpp.o"
  "CMakeFiles/stf_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/stf_crypto.dir/gcm.cpp.o"
  "CMakeFiles/stf_crypto.dir/gcm.cpp.o.d"
  "CMakeFiles/stf_crypto.dir/hmac.cpp.o"
  "CMakeFiles/stf_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/stf_crypto.dir/sha256.cpp.o"
  "CMakeFiles/stf_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/stf_crypto.dir/x25519.cpp.o"
  "CMakeFiles/stf_crypto.dir/x25519.cpp.o.d"
  "libstf_crypto.a"
  "libstf_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stf_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
