# Empty dependencies file for stf_crypto.
# This may be replaced when dependencies are built.
