file(REMOVE_RECURSE
  "libstf_crypto.a"
)
