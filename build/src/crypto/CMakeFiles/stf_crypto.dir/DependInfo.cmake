
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cpp" "src/crypto/CMakeFiles/stf_crypto.dir/aes.cpp.o" "gcc" "src/crypto/CMakeFiles/stf_crypto.dir/aes.cpp.o.d"
  "/root/repo/src/crypto/drbg.cpp" "src/crypto/CMakeFiles/stf_crypto.dir/drbg.cpp.o" "gcc" "src/crypto/CMakeFiles/stf_crypto.dir/drbg.cpp.o.d"
  "/root/repo/src/crypto/gcm.cpp" "src/crypto/CMakeFiles/stf_crypto.dir/gcm.cpp.o" "gcc" "src/crypto/CMakeFiles/stf_crypto.dir/gcm.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/stf_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/stf_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/stf_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/stf_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/x25519.cpp" "src/crypto/CMakeFiles/stf_crypto.dir/x25519.cpp.o" "gcc" "src/crypto/CMakeFiles/stf_crypto.dir/x25519.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
