# Empty compiler generated dependencies file for stf_distributed.
# This may be replaced when dependencies are built.
