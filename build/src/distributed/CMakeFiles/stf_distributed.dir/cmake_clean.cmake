file(REMOVE_RECURSE
  "CMakeFiles/stf_distributed.dir/training.cpp.o"
  "CMakeFiles/stf_distributed.dir/training.cpp.o.d"
  "libstf_distributed.a"
  "libstf_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stf_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
