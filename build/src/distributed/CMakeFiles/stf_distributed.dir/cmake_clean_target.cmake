file(REMOVE_RECURSE
  "libstf_distributed.a"
)
