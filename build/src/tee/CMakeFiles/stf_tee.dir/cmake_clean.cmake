file(REMOVE_RECURSE
  "CMakeFiles/stf_tee.dir/attestation.cpp.o"
  "CMakeFiles/stf_tee.dir/attestation.cpp.o.d"
  "CMakeFiles/stf_tee.dir/enclave.cpp.o"
  "CMakeFiles/stf_tee.dir/enclave.cpp.o.d"
  "CMakeFiles/stf_tee.dir/epc.cpp.o"
  "CMakeFiles/stf_tee.dir/epc.cpp.o.d"
  "CMakeFiles/stf_tee.dir/platform.cpp.o"
  "CMakeFiles/stf_tee.dir/platform.cpp.o.d"
  "libstf_tee.a"
  "libstf_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stf_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
