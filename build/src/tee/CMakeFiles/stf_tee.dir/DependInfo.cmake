
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tee/attestation.cpp" "src/tee/CMakeFiles/stf_tee.dir/attestation.cpp.o" "gcc" "src/tee/CMakeFiles/stf_tee.dir/attestation.cpp.o.d"
  "/root/repo/src/tee/enclave.cpp" "src/tee/CMakeFiles/stf_tee.dir/enclave.cpp.o" "gcc" "src/tee/CMakeFiles/stf_tee.dir/enclave.cpp.o.d"
  "/root/repo/src/tee/epc.cpp" "src/tee/CMakeFiles/stf_tee.dir/epc.cpp.o" "gcc" "src/tee/CMakeFiles/stf_tee.dir/epc.cpp.o.d"
  "/root/repo/src/tee/platform.cpp" "src/tee/CMakeFiles/stf_tee.dir/platform.cpp.o" "gcc" "src/tee/CMakeFiles/stf_tee.dir/platform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/stf_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
