# Empty compiler generated dependencies file for stf_tee.
# This may be replaced when dependencies are built.
