file(REMOVE_RECURSE
  "libstf_tee.a"
)
