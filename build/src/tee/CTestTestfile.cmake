# CMake generated Testfile for 
# Source directory: /root/repo/src/tee
# Build directory: /root/repo/build/src/tee
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
