file(REMOVE_RECURSE
  "CMakeFiles/stf_cas.dir/attest_client.cpp.o"
  "CMakeFiles/stf_cas.dir/attest_client.cpp.o.d"
  "CMakeFiles/stf_cas.dir/cas_server.cpp.o"
  "CMakeFiles/stf_cas.dir/cas_server.cpp.o.d"
  "CMakeFiles/stf_cas.dir/ias.cpp.o"
  "CMakeFiles/stf_cas.dir/ias.cpp.o.d"
  "CMakeFiles/stf_cas.dir/wire.cpp.o"
  "CMakeFiles/stf_cas.dir/wire.cpp.o.d"
  "libstf_cas.a"
  "libstf_cas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stf_cas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
