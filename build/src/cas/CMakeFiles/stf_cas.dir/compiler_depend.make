# Empty compiler generated dependencies file for stf_cas.
# This may be replaced when dependencies are built.
