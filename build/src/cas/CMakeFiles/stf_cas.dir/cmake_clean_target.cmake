file(REMOVE_RECURSE
  "libstf_cas.a"
)
