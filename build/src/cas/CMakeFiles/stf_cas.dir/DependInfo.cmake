
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cas/attest_client.cpp" "src/cas/CMakeFiles/stf_cas.dir/attest_client.cpp.o" "gcc" "src/cas/CMakeFiles/stf_cas.dir/attest_client.cpp.o.d"
  "/root/repo/src/cas/cas_server.cpp" "src/cas/CMakeFiles/stf_cas.dir/cas_server.cpp.o" "gcc" "src/cas/CMakeFiles/stf_cas.dir/cas_server.cpp.o.d"
  "/root/repo/src/cas/ias.cpp" "src/cas/CMakeFiles/stf_cas.dir/ias.cpp.o" "gcc" "src/cas/CMakeFiles/stf_cas.dir/ias.cpp.o.d"
  "/root/repo/src/cas/wire.cpp" "src/cas/CMakeFiles/stf_cas.dir/wire.cpp.o" "gcc" "src/cas/CMakeFiles/stf_cas.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/stf_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/stf_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/stf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/stf_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/stf_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
