# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("crypto")
subdirs("tee")
subdirs("net")
subdirs("runtime")
subdirs("storage")
subdirs("ml")
subdirs("cas")
subdirs("distributed")
subdirs("core")
