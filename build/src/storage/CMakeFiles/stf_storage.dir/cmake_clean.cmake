file(REMOVE_RECURSE
  "CMakeFiles/stf_storage.dir/audit_log.cpp.o"
  "CMakeFiles/stf_storage.dir/audit_log.cpp.o.d"
  "CMakeFiles/stf_storage.dir/kv_store.cpp.o"
  "CMakeFiles/stf_storage.dir/kv_store.cpp.o.d"
  "libstf_storage.a"
  "libstf_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stf_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
