
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/audit_log.cpp" "src/storage/CMakeFiles/stf_storage.dir/audit_log.cpp.o" "gcc" "src/storage/CMakeFiles/stf_storage.dir/audit_log.cpp.o.d"
  "/root/repo/src/storage/kv_store.cpp" "src/storage/CMakeFiles/stf_storage.dir/kv_store.cpp.o" "gcc" "src/storage/CMakeFiles/stf_storage.dir/kv_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/stf_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
