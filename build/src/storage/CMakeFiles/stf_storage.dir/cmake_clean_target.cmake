file(REMOVE_RECURSE
  "libstf_storage.a"
)
