# Empty compiler generated dependencies file for stf_storage.
# This may be replaced when dependencies are built.
