# Empty dependencies file for elastic_inference.
# This may be replaced when dependencies are built.
