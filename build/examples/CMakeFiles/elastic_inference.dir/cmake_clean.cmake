file(REMOVE_RECURSE
  "CMakeFiles/elastic_inference.dir/elastic_inference.cpp.o"
  "CMakeFiles/elastic_inference.dir/elastic_inference.cpp.o.d"
  "elastic_inference"
  "elastic_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
