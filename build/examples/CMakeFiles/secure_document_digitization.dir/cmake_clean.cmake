file(REMOVE_RECURSE
  "CMakeFiles/secure_document_digitization.dir/secure_document_digitization.cpp.o"
  "CMakeFiles/secure_document_digitization.dir/secure_document_digitization.cpp.o.d"
  "secure_document_digitization"
  "secure_document_digitization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_document_digitization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
