# Empty compiler generated dependencies file for secure_document_digitization.
# This may be replaced when dependencies are built.
