file(REMOVE_RECURSE
  "CMakeFiles/model_tool.dir/model_tool.cpp.o"
  "CMakeFiles/model_tool.dir/model_tool.cpp.o.d"
  "model_tool"
  "model_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
