# Empty compiler generated dependencies file for model_tool.
# This may be replaced when dependencies are built.
