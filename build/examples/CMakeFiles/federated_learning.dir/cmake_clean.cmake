file(REMOVE_RECURSE
  "CMakeFiles/federated_learning.dir/federated_learning.cpp.o"
  "CMakeFiles/federated_learning.dir/federated_learning.cpp.o.d"
  "federated_learning"
  "federated_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
