# Empty dependencies file for federated_learning.
# This may be replaced when dependencies are built.
