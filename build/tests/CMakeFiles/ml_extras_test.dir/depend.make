# Empty dependencies file for ml_extras_test.
# This may be replaced when dependencies are built.
