file(REMOVE_RECURSE
  "CMakeFiles/ml_extras_test.dir/ml_extras_test.cpp.o"
  "CMakeFiles/ml_extras_test.dir/ml_extras_test.cpp.o.d"
  "ml_extras_test"
  "ml_extras_test.pdb"
  "ml_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
