file(REMOVE_RECURSE
  "CMakeFiles/cas_test.dir/cas_test.cpp.o"
  "CMakeFiles/cas_test.dir/cas_test.cpp.o.d"
  "cas_test"
  "cas_test.pdb"
  "cas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
