# Empty compiler generated dependencies file for cas_test.
# This may be replaced when dependencies are built.
