file(REMOVE_RECURSE
  "CMakeFiles/security_test.dir/security_test.cpp.o"
  "CMakeFiles/security_test.dir/security_test.cpp.o.d"
  "security_test"
  "security_test.pdb"
  "security_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
