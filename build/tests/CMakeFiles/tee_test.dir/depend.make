# Empty dependencies file for tee_test.
# This may be replaced when dependencies are built.
