file(REMOVE_RECURSE
  "CMakeFiles/tee_test.dir/tee_test.cpp.o"
  "CMakeFiles/tee_test.dir/tee_test.cpp.o.d"
  "tee_test"
  "tee_test.pdb"
  "tee_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tee_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
