# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/tee_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/cas_test[1]_include.cmake")
include("/root/repo/build/tests/distributed_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/ml_extras_test[1]_include.cmake")
include("/root/repo/build/tests/serving_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
