# Empty compiler generated dependencies file for bench_fsshield.
# This may be replaced when dependencies are built.
