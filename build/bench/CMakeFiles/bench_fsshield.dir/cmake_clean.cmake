file(REMOVE_RECURSE
  "CMakeFiles/bench_fsshield.dir/bench_fsshield.cpp.o"
  "CMakeFiles/bench_fsshield.dir/bench_fsshield.cpp.o.d"
  "bench_fsshield"
  "bench_fsshield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fsshield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
