file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_epc.dir/bench_ablation_epc.cpp.o"
  "CMakeFiles/bench_ablation_epc.dir/bench_ablation_epc.cpp.o.d"
  "bench_ablation_epc"
  "bench_ablation_epc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_epc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
