# Empty dependencies file for bench_ablation_epc.
# This may be replaced when dependencies are built.
