file(REMOVE_RECURSE
  "CMakeFiles/bench_attestation.dir/bench_attestation.cpp.o"
  "CMakeFiles/bench_attestation.dir/bench_attestation.cpp.o.d"
  "bench_attestation"
  "bench_attestation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attestation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
