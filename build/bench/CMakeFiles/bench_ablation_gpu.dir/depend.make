# Empty dependencies file for bench_ablation_gpu.
# This may be replaced when dependencies are built.
