file(REMOVE_RECURSE
  "CMakeFiles/bench_tf_vs_lite.dir/bench_tf_vs_lite.cpp.o"
  "CMakeFiles/bench_tf_vs_lite.dir/bench_tf_vs_lite.cpp.o.d"
  "bench_tf_vs_lite"
  "bench_tf_vs_lite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tf_vs_lite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
