# Empty compiler generated dependencies file for bench_tf_vs_lite.
# This may be replaced when dependencies are built.
