# Empty compiler generated dependencies file for bench_ablation_normalization.
# This may be replaced when dependencies are built.
