file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_normalization.dir/bench_ablation_normalization.cpp.o"
  "CMakeFiles/bench_ablation_normalization.dir/bench_ablation_normalization.cpp.o.d"
  "bench_ablation_normalization"
  "bench_ablation_normalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_normalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
