file(REMOVE_RECURSE
  "CMakeFiles/bench_training.dir/bench_training.cpp.o"
  "CMakeFiles/bench_training.dir/bench_training.cpp.o.d"
  "bench_training"
  "bench_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
