file(REMOVE_RECURSE
  "CMakeFiles/bench_classification.dir/bench_classification.cpp.o"
  "CMakeFiles/bench_classification.dir/bench_classification.cpp.o.d"
  "bench_classification"
  "bench_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
