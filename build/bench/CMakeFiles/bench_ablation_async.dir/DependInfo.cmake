
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_async.cpp" "bench/CMakeFiles/bench_ablation_async.dir/bench_ablation_async.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_async.dir/bench_ablation_async.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/distributed/CMakeFiles/stf_distributed.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/stf_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/cas/CMakeFiles/stf_cas.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/stf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/stf_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/stf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/stf_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/stf_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
