# Empty compiler generated dependencies file for bench_ablation_async.
# This may be replaced when dependencies are built.
