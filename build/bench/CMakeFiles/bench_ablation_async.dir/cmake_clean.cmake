file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_async.dir/bench_ablation_async.cpp.o"
  "CMakeFiles/bench_ablation_async.dir/bench_ablation_async.cpp.o.d"
  "bench_ablation_async"
  "bench_ablation_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
