file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_syscalls.dir/bench_ablation_syscalls.cpp.o"
  "CMakeFiles/bench_ablation_syscalls.dir/bench_ablation_syscalls.cpp.o.d"
  "bench_ablation_syscalls"
  "bench_ablation_syscalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_syscalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
