# Empty compiler generated dependencies file for bench_ablation_syscalls.
# This may be replaced when dependencies are built.
