file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_chunk.dir/bench_ablation_chunk.cpp.o"
  "CMakeFiles/bench_ablation_chunk.dir/bench_ablation_chunk.cpp.o.d"
  "bench_ablation_chunk"
  "bench_ablation_chunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
