# Empty dependencies file for bench_ablation_chunk.
# This may be replaced when dependencies are built.
