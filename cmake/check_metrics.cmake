# Cross-checks the observability name constants against their reference doc.
#
# Run as a ctest script (see tests/CMakeLists.txt, test name
# `metrics_docs_crosscheck`, label `obs`):
#
#   cmake -DNAMES_HEADER=src/obs/names.h -DDOCS=docs/METRICS.md \
#         -DSOURCE_DIR=. -P cmake/check_metrics.cmake
#
# Three invariants, each fatal on violation:
#   1. Every name constant declared in src/obs/names.h — metric, span, and
#      profile-category (`kCat*`) names alike — appears as a backticked
#      table entry in docs/METRICS.md (no undocumented telemetry).
#   2. Every backticked dotted name in a docs/METRICS.md table row is
#      declared in src/obs/names.h (no phantom documentation).
#   3. Every `k*` constant in names.h is referenced (as `names::k*`) by at
#      least one file under src/ or tools/ other than names.h itself (no
#      dead names — tools/ counts because trace_report consumes the span
#      names the serving plane produces).
#
# Declared names are parsed from the `k... = "value"` declaration pairs, not
# from bare quoted strings, so every constant's value is covered exactly and
# strings in comments don't count.

cmake_minimum_required(VERSION 3.21)  # script mode: pin policies (IN_LIST)

foreach(var NAMES_HEADER DOCS SOURCE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_metrics.cmake: -D${var}=... is required")
  endif()
endforeach()

if(NOT EXISTS "${NAMES_HEADER}")
  message(FATAL_ERROR "missing ${NAMES_HEADER}")
endif()
if(NOT EXISTS "${DOCS}")
  message(FATAL_ERROR "missing ${DOCS} — every metric must be documented")
endif()

# --- 1+2: the name sets ----------------------------------------------------

# Declared names: the string value of every `k... = "..."` constant in the
# header (metric names, span names, profile category names).
file(READ "${NAMES_HEADER}" header_text)
string(REGEX MATCHALL "k[A-Z][A-Za-z0-9]*[ \t\r\n]*=[ \t\r\n]*\"[^\"]+\""
       decl_pairs "${header_text}")
set(declared "")
foreach(pair IN LISTS decl_pairs)
  # REGEX REPLACE substitutes globally (and re-anchors ^ after each hit),
  # so extract the quoted value with MATCH and strip its delimiters.
  string(REGEX MATCH "\"[^\"]+\"" name "${pair}")
  string(REGEX REPLACE "\"" "" name "${name}")
  list(APPEND declared "${name}")
endforeach()
list(REMOVE_DUPLICATES declared)
list(LENGTH declared declared_count)
if(declared_count EQUAL 0)
  message(FATAL_ERROR "no metric names parsed from ${NAMES_HEADER}")
endif()

# Documented names: backticked dotted tokens in markdown *table cells* only
# (preceded by "| "), so prose references to files (`foo.h`) or symbols
# don't count as metrics. Parsed from the raw text, not file(STRINGS):
# CMake list parsing bracket-protects `[`, which markdown prose contains.
file(READ "${DOCS}" docs_text)
string(REGEX MATCHALL "\\| `[a-z0-9_]+(\\.[a-z0-9_]+)+`" ticked
       "${docs_text}")
set(documented "")
foreach(tick IN LISTS ticked)
  string(REGEX REPLACE "[`| ]" "" name "${tick}")
  list(APPEND documented "${name}")
endforeach()
list(REMOVE_DUPLICATES documented)
list(LENGTH documented documented_count)
if(documented_count EQUAL 0)
  message(FATAL_ERROR "no metric names parsed from ${DOCS} table rows")
endif()

set(failures 0)
foreach(name IN LISTS declared)
  if(NOT name IN_LIST documented)
    message(SEND_ERROR
            "'${name}' is declared in src/obs/names.h but has no table row "
            "in docs/METRICS.md")
    math(EXPR failures "${failures} + 1")
  endif()
endforeach()
foreach(name IN LISTS documented)
  if(NOT name IN_LIST declared)
    message(SEND_ERROR
            "'${name}' is documented in docs/METRICS.md but not declared "
            "in src/obs/names.h")
    math(EXPR failures "${failures} + 1")
  endif()
endforeach()

# --- 3: no dead constants --------------------------------------------------

string(REGEX MATCHALL "(k[A-Z][A-Za-z0-9]*) =" const_decls "${header_text}")
set(constants "")
foreach(decl IN LISTS const_decls)
  string(REGEX REPLACE " =$" "" const "${decl}")
  list(APPEND constants "${const}")
endforeach()
list(REMOVE_DUPLICATES constants)

file(GLOB_RECURSE source_files
     "${SOURCE_DIR}/src/*.cpp" "${SOURCE_DIR}/src/*.h"
     "${SOURCE_DIR}/tools/*.cpp")
set(all_sources "")
foreach(path IN LISTS source_files)
  if(path STREQUAL "${NAMES_HEADER}")
    continue()
  endif()
  file(READ "${path}" text)
  string(APPEND all_sources "${text}")
endforeach()

foreach(const IN LISTS constants)
  string(FIND "${all_sources}" "names::${const}" pos)
  if(pos EQUAL -1)
    message(SEND_ERROR
            "names::${const} is declared in src/obs/names.h but no file "
            "under src/ uses it — remove it or instrument the site")
    math(EXPR failures "${failures} + 1")
  endif()
endforeach()

if(failures GREATER 0)
  message(FATAL_ERROR
          "metrics/docs crosscheck failed with ${failures} mismatch(es)")
endif()

list(LENGTH constants constant_count)
message(STATUS
        "metrics crosscheck OK: ${declared_count} names declared, "
        "${documented_count} documented, ${constant_count} constants used")
